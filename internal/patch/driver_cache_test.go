package patch

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/fault"
)

// hardenWith runs the pincheck fixed point with the given store.
func hardenWith(t *testing.T, st *campaign.Store, order int) *Result {
	t.Helper()
	res, err := Harden(build(t, pincheckSrc), Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelSkip},
		Order:  order,
		Store:  st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// binImage flattens a result's binary for comparison.
func binImage(t *testing.T, r *Result) []byte {
	t.Helper()
	img, err := r.Binary.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestDriverWarmStoreBitIdentity: a second `patch` run over the same
// binary with a shared cache directory must produce a bit-identical
// hardened binary and final report, answering its campaigns from the
// store instead of simulating.
func TestDriverWarmStoreBitIdentity(t *testing.T) {
	dir := t.TempDir()
	st1, err := campaign.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := hardenWith(t, st1, 1)
	if cold.Cache.Misses == 0 {
		t.Fatal("cold driver run missed nothing — store not consulted?")
	}

	// A fresh store over the same directory stands in for a second
	// process.
	st2, err := campaign.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := hardenWith(t, st2, 1)
	if warm.Cache.Misses != 0 {
		t.Errorf("warm driver run still missed: %+v", warm.Cache)
	}
	if warm.Cache.Hits == 0 {
		t.Error("warm driver run recorded no store hits")
	}
	for i := range warm.Iterations {
		if !warm.Iterations[i].CacheHit {
			t.Errorf("warm iteration %d not served from the store", i+1)
		}
	}
	if !bytes.Equal(binImage(t, cold), binImage(t, warm)) {
		t.Fatal("warm run produced a different hardened binary")
	}
	if !reflect.DeepEqual(cold.Final.Injections, warm.Final.Injections) {
		t.Fatal("warm run produced a different final report")
	}
	if cold.Converged() != warm.Converged() {
		t.Fatal("convergence verdict differs between cold and warm runs")
	}
}

// TestDriverStorelessMatchesStored: the incremental memo (always on)
// and the store (opt-in) must not change results — a driver run with
// neither matches one with both.
func TestDriverStorelessMatchesStored(t *testing.T) {
	plain := hardenWith(t, nil, 1)
	st, err := campaign.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stored := hardenWith(t, st, 1)
	if !bytes.Equal(binImage(t, plain), binImage(t, stored)) {
		t.Fatal("store changed the hardened binary")
	}
	if !reflect.DeepEqual(plain.Final.Injections, stored.Final.Injections) {
		t.Fatal("store changed the final report")
	}
	// The storeless run still reuses across iterations via the memo:
	// the final verification re-ran an unchanged binary.
	if plain.Cache.Reused == 0 {
		t.Error("driver memo reused nothing across iterations")
	}
}

// TestDriverOrder2WarmStore: the order-2 escalation loop's solo and
// pair campaigns replay from a warm store too, with identical results.
func TestDriverOrder2WarmStore(t *testing.T) {
	if testing.Short() {
		t.Skip("order-2 fixed point; run without -short")
	}
	dir := t.TempDir()
	st1, err := campaign.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := hardenWith(t, st1, 2)

	st2, err := campaign.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := hardenWith(t, st2, 2)
	if warm.Cache.Misses != 0 {
		t.Errorf("warm order-2 run still missed: %+v", warm.Cache)
	}
	if !bytes.Equal(binImage(t, cold), binImage(t, warm)) {
		t.Fatal("warm order-2 run produced a different hardened binary")
	}
	if !reflect.DeepEqual(cold.FinalPairs, warm.FinalPairs) {
		t.Fatal("warm order-2 run produced different final pairs")
	}
	if cold.PairConverged() != warm.PairConverged() {
		t.Fatal("pair convergence verdict differs")
	}
}
