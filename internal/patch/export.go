package patch

import (
	"io"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
)

// Export is the machine-readable digest of a Faulter+Patcher run,
// shaped for the CLI's JSON output. Order-2 fields appear only when the
// escalation stage ran.
type Export struct {
	OriginalCodeSize int     `json:"original_code_size"`
	HardenedCodeSize int     `json:"hardened_code_size"`
	OverheadPct      float64 `json:"overhead_pct"`
	Converged        bool    `json:"converged"`

	Iterations []ExportIteration `json:"iterations"`

	// Order2 summarizes the escalation stage (absent when the driver
	// ran with Order < 2).
	Order2 *ExportOrder2 `json:"order2,omitempty"`

	// Cache is the cumulative store/memo accounting across every
	// campaign the driver ran.
	Cache campaign.CacheStats `json:"cache"`
}

// ExportOrder2 is the order-2 escalation digest.
type ExportOrder2 struct {
	Iterations       []ExportPairIteration `json:"pair_iterations"`
	FinalPairs       int                   `json:"final_pairs"`
	FinalPairSuccess int                   `json:"final_pair_success"`
	Converged        bool                  `json:"pair_converged"`
}

// ExportIteration is one order-1 rinse-and-repeat round. The cache
// fields report the incremental engine's work avoidance (zero when
// everything was simulated cold).
type ExportIteration struct {
	Iteration  int `json:"iteration"`
	Injections int `json:"injections"`
	Successes  int `json:"successes"`
	Sites      int `json:"sites"`
	Patched    int `json:"patched"`
	Residual   int `json:"residual"`
	Detected   int `json:"detected"`
	CodeSize   int `json:"code_size"`

	Reused      int  `json:"reused,omitempty"`
	Resimulated int  `json:"resimulated,omitempty"`
	CacheHit    bool `json:"cache_hit,omitempty"`
}

// ExportPairIteration is one order-2 escalation round.
type ExportPairIteration struct {
	Iteration int `json:"iteration"`
	Solo      int `json:"solo"`
	Pairs     int `json:"pairs"`
	Successes int `json:"successes"`
	Escalated int `json:"escalated"`
	Residual  int `json:"residual"`
	CodeSize  int `json:"code_size"`

	Reused      int `json:"reused,omitempty"`
	Resimulated int `json:"resimulated,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
}

// Export digests the result for machine consumption.
func (r *Result) Export() Export {
	e := Export{
		OriginalCodeSize: r.OriginalCodeSize,
		HardenedCodeSize: r.Binary.CodeSize(),
		OverheadPct:      r.Overhead() * 100,
		Converged:        r.Converged(),
		Cache:            r.Cache,
	}
	for _, it := range r.Iterations {
		e.Iterations = append(e.Iterations, ExportIteration(it))
	}
	if len(r.PairIterations) > 0 {
		o2 := &ExportOrder2{FinalPairs: len(r.FinalPairs), Converged: r.PairConverged()}
		for _, it := range r.PairIterations {
			o2.Iterations = append(o2.Iterations, ExportPairIteration(it))
		}
		for _, p := range r.FinalPairs {
			if p.Outcome == fault.OutcomeSuccess {
				o2.FinalPairSuccess++
			}
		}
		e.Order2 = o2
	}
	return e
}

// WriteJSON exports the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	return report.WriteJSON(w, r.Export())
}

// Table renders the iteration history as the standard text table (also
// the CSV source): order-1 rounds first, then any order-2 escalation
// rounds with their pair columns.
func (r *Result) Table() *report.Table {
	tab := &report.Table{
		Title:  "faulter+patcher iterations",
		Header: []string{"stage", "iter", "injections", "successes", "patched", "residual", "text_bytes"},
	}
	for _, it := range r.Iterations {
		tab.AddRow("order-1", itoa(it.Iteration), itoa(it.Injections), itoa(it.Successes),
			itoa(it.Patched), itoa(it.Residual), itoa(it.CodeSize))
	}
	for _, it := range r.PairIterations {
		tab.AddRow("order-2", itoa(it.Iteration), itoa(it.Pairs), itoa(it.Successes),
			itoa(it.Escalated), itoa(it.Residual), itoa(it.CodeSize))
	}
	return tab
}

// WriteCSV exports the iteration table as CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return r.Table().WriteCSV(w)
}

// itoa is strconv.Itoa without the extra import line noise in Table.
func itoa(n int) string {
	return report.Int(n)
}
