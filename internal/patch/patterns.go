// Package patch implements the paper's patcher (§IV-B2): replacing
// fault-vulnerable instructions with the hardened local patterns of
// Tables I–III, and the iterative Faulter+Patcher fixed-point driver
// (§IV-B3) that re-runs the fault simulation after each patch round.
//
// Beyond the paper, the driver has an order-2 mode (Options.Order = 2):
// after the single-fault fixed point it simulates fault *pairs* and
// escalates the sites of successful pairs to the order-2-aware
// StyleOrder2 patterns (see order2.go), iterating until no pair
// succeeds.
package patch

import (
	"errors"
	"fmt"
	"math"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/isa"
)

// ErrUnpatchable marks sites the local patterns cannot protect (the
// driver records them as residual vulnerabilities rather than failing).
var ErrUnpatchable = errors.New("patch: no hardened pattern for site")

// Style selects between the patterns exactly as printed in the paper's
// Tables I–III and a hardened variant.
type Style uint8

// Pattern styles.
const (
	// StyleFallthrough (default) keeps the happy flow on the
	// fall-through edge and branches *to* the fault handler only on
	// detection. Detection branches are never taken in a correct run,
	// so single bit flips in their displacements are dead — this is
	// what lets the bit-flip residual drop (paper §V-C reports a ~50%
	// reduction; the as-printed patterns leave every pattern-internal
	// taken branch as a fresh displacement target).
	StyleFallthrough Style = iota

	// StylePaper reproduces Tables I–III as printed: a je jumps *over*
	// a call-faulthandler into the happy flow.
	StylePaper

	// StyleOrder2 chains two independent verifications per site (see
	// order2.go), so a pair of single-instruction skips cannot remove a
	// computation together with its check — the multi-fault-resistant
	// patterns the order-2 driver escalates to.
	StyleOrder2
)

// FaulthandlerLabel names the injected fault-response routine.
const FaulthandlerLabel = "faulthandler"

// redZone is the x86-64 System V red zone the cmp/jcc patterns must
// step over before pushing (paper Table II: "Due to Intel's red zone,
// we have to subtract 128 bytes from rsp").
const redZone = 128

// prot wraps an instruction as a protected (inserted) bir instruction.
func prot(in isa.Inst) bir.Inst {
	return bir.Inst{I: in, Protected: true}
}

// protData wraps a protected instruction that carries a RIP-relative
// data target copied from the original site.
func protData(in isa.Inst, dataTarget uint64) bir.Inst {
	return bir.Inst{I: in, Protected: true, DataTarget: dataTarget}
}

// protBranch wraps a protected branch to a label.
func protBranch(in isa.Inst, target string) bir.Inst {
	return bir.Inst{I: in, Protected: true, TargetLabel: target}
}

// EnsureFaulthandler appends the fault-response routine once: it writes
// "FAULT\n" to stderr and exits with the detection code 42. The message
// bytes are materialized on the stack so no data section is needed.
func EnsureFaulthandler(p *bir.Program) {
	if p.Block(FaulthandlerLabel) != nil {
		return
	}
	const faultMsg = 0x0A544C554146 // "FAULT\n" little-endian
	p.AppendBlock(&bir.Block{Label: FaulthandlerLabel, Insts: []bir.Inst{
		prot(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(faultMsg))),
		prot(isa.NewInst(isa.PUSH, isa.R(isa.RAX))),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(1))),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RDI), isa.Imm(2))),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RSI), isa.R(isa.RSP))),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RDX), isa.Imm(6))),
		prot(isa.NewInst(isa.SYSCALL)),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(60))),
		prot(isa.NewInst(isa.MOV, isa.R(isa.RDI), isa.Imm(42))),
		prot(isa.NewInst(isa.SYSCALL)),
	}})
}

// callFaulthandler builds the "call faulthandler" instruction.
func callFaulthandler() bir.Inst {
	return protBranch(isa.NewInst(isa.CALL, isa.Imm(0)), FaulthandlerLabel)
}

// pickScratch chooses a 64-bit register not referenced by the given
// instructions (and never RSP).
func pickScratch(insts ...isa.Inst) (isa.Reg, error) {
	candidates := []isa.Reg{isa.RBX, isa.RCX, isa.RDX, isa.RAX, isa.RSI, isa.RDI, isa.R8, isa.R9, isa.R10, isa.R11}
next:
	for _, r := range candidates {
		for _, in := range insts {
			if in.UsesReg(r) {
				continue next
			}
		}
		return r, nil
	}
	return isa.NoReg, fmt.Errorf("%w: no scratch register available", ErrUnpatchable)
}

// adjustRSP returns the operand with RSP-relative displacements shifted
// by delta, so a pattern that moved the stack pointer still addresses
// the original location.
func adjustRSP(op isa.Operand, delta int32) (isa.Operand, error) {
	if op.Kind != isa.KindMem || op.Mem.Base != isa.RSP {
		return op, nil
	}
	d := int64(op.Mem.Disp) + int64(delta)
	if d < math.MinInt32 || d > math.MaxInt32 {
		return op, fmt.Errorf("%w: rsp displacement overflow", ErrUnpatchable)
	}
	op.Mem.Disp = int32(d)
	return op, nil
}

// detectJcc builds the detection branch for a pattern: in StylePaper a
// taken je over a call-faulthandler (Table I shape), in
// StyleFallthrough a normally-not-taken jne straight to the handler.
// It returns the instructions to append after the comparison.
func detectJcc(style Style, happyLabel string) []bir.Inst {
	if style == StylePaper {
		return []bir.Inst{
			protBranch(isa.NewJcc(isa.CondE, 0), happyLabel),
			callFaulthandler(),
		}
	}
	return []bir.Inst{
		protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel),
	}
}

// MovPattern builds the Table I protection for a mov-class site:
//
//	mov D, S            (original)
//	cmp D, S            (re-read and compare; duplicate read)
//	je  happyflow
//	call faulthandler
//
// For movzx/movsx/lea, where a direct cmp of D against S is not
// expressible, the comparison goes through a scratch register that
// recomputes the move (push/pop preserves the scratch around it).
func MovPattern(p *bir.Program, site bir.Inst, happyLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	switch in.Op {
	case isa.MOV:
		return movPatternDirect(p, site, happyLabel, style)
	case isa.MOVZX, isa.MOVSX, isa.LEA:
		return movPatternScratch(p, site, happyLabel, style)
	default:
		return nil, fmt.Errorf("%w: %s is not a mov-class op", ErrUnpatchable, in.Op)
	}
}

// aliasesDst reports whether re-reading the source after the move would
// observe the move's own effect (e.g. mov rax, [rax+8]): such sites
// cannot be verified by duplicate reads.
func aliasesDst(in isa.Inst) bool {
	return in.Dst.Kind == isa.KindReg && in.Src.Kind == isa.KindMem && in.Src.UsesReg(in.Dst.Reg)
}

func movPatternDirect(p *bir.Program, site bir.Inst, happyLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	// cmp D, S must be encodable: reject imm64 sources (cmp r64, imm64
	// does not exist) — the paper's pattern applies to register/memory
	// moves and small immediates.
	if in.Src.Kind == isa.KindImm && (in.Src.Imm < math.MinInt32 || in.Src.Imm > math.MaxInt32) {
		return nil, fmt.Errorf("%w: mov with 64-bit immediate", ErrUnpatchable)
	}
	if aliasesDst(in) {
		return nil, fmt.Errorf("%w: destination aliases source address", ErrUnpatchable)
	}
	cmp := isa.NewInst(isa.CMP, in.Dst, in.Src)
	insts := []bir.Inst{
		{I: in, Protected: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
		protData(cmp, site.DataTarget),
	}
	insts = append(insts, detectJcc(style, happyLabel)...)
	return []*bir.Block{{Insts: insts}}, nil
}

// movScratchScaffold validates a scratch-register mov-class site
// (movzx/movsx/lea) and builds the shared machinery of both the
// order-1 and order-2 patterns: the chosen scratch register, the
// recompute-into-scratch instruction (rsp-adjusted for the scratch
// push), and the width-matched comparison operands.
func movScratchScaffold(in isa.Inst) (scr isa.Reg, redo isa.Inst, dstFull, scrOp isa.Operand, err error) {
	if in.Dst.Kind != isa.KindReg {
		return scr, redo, dstFull, scrOp, fmt.Errorf("%w: %s with non-register destination", ErrUnpatchable, in.Op)
	}
	if aliasesDst(in) || (in.Op == isa.LEA && in.Src.UsesReg(in.Dst.Reg)) {
		return scr, redo, dstFull, scrOp, fmt.Errorf("%w: destination aliases source address", ErrUnpatchable)
	}
	scr, err = pickScratch(in)
	if err != nil {
		return scr, redo, dstFull, scrOp, err
	}
	// Recompute into scratch (reading S again), compare, restore.
	redo = in
	redo.Dst = isa.R(scr)
	if in.Op == isa.MOVZX || in.Op == isa.MOVSX {
		redo.Dst.Width = in.Dst.Width
		redo.Dst.Reg = scr
	}
	// The push moves RSP by -8; adjust any rsp-based source.
	redoSrc, err := adjustRSP(redo.Src, 8)
	if err != nil {
		return scr, redo, dstFull, scrOp, err
	}
	redo.Src = redoSrc

	dstFull = isa.R(in.Dst.Reg)
	dstFull.Width = in.Dst.Width
	scrOp = isa.R(scr)
	scrOp.Width = in.Dst.Width
	return scr, redo, dstFull, scrOp, nil
}

func movPatternScratch(p *bir.Program, site bir.Inst, happyLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	scr, redo, dstFull, scrOp, err := movScratchScaffold(in)
	if err != nil {
		return nil, err
	}
	insts := []bir.Inst{
		{I: in, Protected: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
		prot(isa.NewInst(isa.PUSH, isa.R(scr))),
		protData(redo, site.DataTarget),
		prot(isa.NewInst(isa.CMP, dstFull, scrOp)),
		prot(isa.NewInst(isa.POP, isa.R(scr))), // pop preserves flags
	}
	insts = append(insts, detectJcc(style, happyLabel)...)
	return []*bir.Block{{Insts: insts}}, nil
}

// CmpPattern builds the Table II protection for cmp/test sites: execute
// the comparison twice, push both RFLAGS snapshots, and verify they
// agree before restoring the original flags.
//
//	lea rsp, [rsp-128]     ; step over the red zone
//	cmp X, Y               ; first comparison   (rsp delta -128)
//	push SCR
//	pushfq                 ; flags #1
//	cmp X, Y               ; second comparison  (rsp delta -144)
//	pushfq                 ; flags #2
//	pop SCR                ; SCR = flags #2
//	cmp SCR, [rsp]         ; compare against flags #1
//	je restore
//	call faulthandler
//	restore:
//	popfq                  ; restore flags #1 for the real consumer
//	pop SCR
//	lea rsp, [rsp+128]
func CmpPattern(p *bir.Program, site bir.Inst, happyLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	if in.Op != isa.CMP && in.Op != isa.TEST {
		return nil, fmt.Errorf("%w: %s is not a compare", ErrUnpatchable, in.Op)
	}
	scr, err := pickScratch(in)
	if err != nil {
		return nil, err
	}

	adjusted := func(delta int32) (isa.Inst, error) {
		c := in
		d, err := adjustRSP(c.Dst, delta)
		if err != nil {
			return c, err
		}
		s, err := adjustRSP(c.Src, delta)
		if err != nil {
			return c, err
		}
		c.Dst, c.Src = d, s
		return c, nil
	}
	cmp1, err := adjusted(redZone)
	if err != nil {
		return nil, err
	}
	cmp2, err := adjusted(redZone + 16) // after push SCR + pushfq
	if err != nil {
		return nil, err
	}

	head := []bir.Inst{
		prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -redZone))),
		protData(cmp1, site.DataTarget),
		prot(isa.NewInst(isa.PUSH, isa.R(scr))),
		prot(isa.NewInst(isa.PUSHFQ)),
		protData(cmp2, site.DataTarget),
		prot(isa.NewInst(isa.PUSHFQ)),
		prot(isa.NewInst(isa.POP, isa.R(scr))),
		prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0))),
	}
	restoreInsts := []bir.Inst{
		prot(isa.NewInst(isa.POPFQ)),
		prot(isa.NewInst(isa.POP, isa.R(scr))),
		prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, redZone))),
	}
	_ = happyLabel // flags flow to the fall-through consumer implicitly

	if style == StylePaper {
		restoreLabel := p.NewLabel("restore")
		head = append(head,
			protBranch(isa.NewJcc(isa.CondE, 0), restoreLabel),
			callFaulthandler(),
		)
		return []*bir.Block{
			{Insts: head},
			{Label: restoreLabel, Insts: restoreInsts},
		}, nil
	}
	head = append(head, protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel))
	head = append(head, restoreInsts...)
	// Authoritative final evaluation at the original stack depth: the
	// flags the consumer sees never depend on popfq executing, so
	// skipping the restore cannot smuggle the verify-compare's
	// "equal" state into the protected branch (it would otherwise be a
	// fresh instruction-skip vulnerability — found by the faulter when
	// iterating on this very pattern).
	head = append(head, protData(in, site.DataTarget))
	return []*bir.Block{{Insts: head}}, nil
}

// JccPattern builds the Table III protection for conditional jumps:
// both outcomes of the branch re-verify the condition via SETcc before
// committing, and each side re-executes the branch as a second check.
//
// Two deviations from the table as printed (documented in
// docs/COUNTERMEASURES.md):
// the rsp red-zone adjustment is restored with lea rsp,[rsp+128] on both
// paths (the printed pattern leaks 128 bytes of stack), and the
// fall-through side re-checks with the *inverted* condition (as printed,
// the fall-through path would always reach the fault handler).
func JccPattern(p *bir.Program, site bir.Inst, fallLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	if in.Op != isa.JCC {
		return nil, fmt.Errorf("%w: %s is not a conditional jump", ErrUnpatchable, in.Op)
	}
	cond := in.Cond
	target := site.TargetLabel

	njt := p.NewLabel("newjumptarget")
	nftj := p.NewLabel("newfallthroughjmp")
	njtj := p.NewLabel("newjumptargetjmp")

	verify := func(expect int64, okLabel string) []bir.Inst {
		insts := []bir.Inst{
			prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -redZone))),
			prot(isa.NewInst(isa.PUSH, isa.R(isa.RCX))),
			prot(isa.NewInst(isa.PUSHFQ)),
			prot(isa.NewSetcc(cond, isa.RCX)),
			prot(isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(expect))),
		}
		if style == StylePaper {
			return append(insts,
				protBranch(isa.NewJcc(isa.CondE, 0), okLabel),
				callFaulthandler(),
			)
		}
		return append(insts, protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel))
	}
	unwind := []bir.Inst{
		prot(isa.NewInst(isa.POPFQ)),
		prot(isa.NewInst(isa.POP, isa.R(isa.RCX))),
		prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, redZone))),
	}

	var blocks []*bir.Block
	if style == StylePaper {
		head := &bir.Block{Insts: []bir.Inst{
			protBranch(isa.NewJcc(cond, 0), njt),
		}}
		// Fall-through side: cond evaluated false.
		ftCheck := &bir.Block{Insts: verify(0, nftj)}
		ftCommit := &bir.Block{Label: nftj, Insts: append(append([]bir.Inst{}, unwind...),
			protBranch(isa.NewJcc(cond.Inverse(), 0), fallLabel),
			callFaulthandler(),
		)}
		// Jump-target side: cond evaluated true.
		jtCheck := &bir.Block{Label: njt, Insts: verify(1, njtj)}
		jtCommit := &bir.Block{Label: njtj, Insts: append(append([]bir.Inst{}, unwind...),
			protBranch(isa.NewJcc(cond, 0), target),
			callFaulthandler(),
		)}
		blocks = []*bir.Block{head, ftCheck, ftCommit, jtCheck, jtCommit}
	} else {
		// Inverted head: the not-taken direction of the head branch is
		// the taken direction of the original jump, so the verified
		// jump-target side falls through from the head. Every
		// detection branch targets the fault handler and is not taken
		// in a correct run; the only live displacement left is the
		// re-executed original branch.
		nft := p.NewLabel("newfallthrough")
		jtSide := &bir.Block{Insts: append([]bir.Inst{
			protBranch(isa.NewJcc(cond.Inverse(), 0), nft),
		}, append(verify(1, njtj), append(append([]bir.Inst{}, unwind...),
			protBranch(isa.NewJcc(cond, 0), target),
			callFaulthandler(),
		)...)...)}
		// Fall-through side: verify cond false, re-check, and fall
		// through into the original successor (the driver places the
		// continuation directly after this block).
		ftSide := &bir.Block{Label: nft, Insts: append(verify(0, nftj), append(append([]bir.Inst{}, unwind...),
			protBranch(isa.NewJcc(cond, 0), FaulthandlerLabel),
		)...)}
		blocks = []*bir.Block{jtSide, ftSide}
	}
	return blocks, nil
}

// AluPattern duplicates a destructive ALU instruction (the general
// instruction-duplication scheme the paper's §V-C costs at >= 300%):
// the operation is computed twice into a scratch register, the two
// results are compared, and only then is the real destination updated —
// as the last instruction, so consumers of the operation's flags and
// result see exactly the original semantics.
//
//	push SCR
//	mov  SCR, D            ; (rsp-relative operands adjusted)
//	op   SCR, S            ; expected result
//	push SCR
//	mov  SCR, D
//	op   SCR, S            ; recomputed result
//	cmp  SCR, [rsp]
//	jne  faulthandler      ; (je over call faulthandler in StylePaper)
//	lea  rsp, [rsp+8]
//	pop  SCR
//	op   D, S              ; authoritative update: value and flags
//
// Carry-consuming ops (adc/sbb) are rejected — the verification compare
// would corrupt their input flag.
func AluPattern(p *bir.Program, site bir.Inst, happyLabel string, style Style) ([]*bir.Block, error) {
	in := site.I
	scr, mov1, op1, mov2, op2, err := aluScaffold(in)
	if err != nil {
		return nil, err
	}

	insts := []bir.Inst{
		prot(isa.NewInst(isa.PUSH, isa.R(scr))),
		protData(mov1, site.DataTarget),
		protData(op1, site.DataTarget),
		prot(isa.NewInst(isa.PUSH, isa.R(scr))),
		protData(mov2, site.DataTarget),
		protData(op2, site.DataTarget),
		prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0))),
	}
	var blocks []*bir.Block
	tail := []bir.Inst{
		prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, 8))),
		prot(isa.NewInst(isa.POP, isa.R(scr))),
		{I: in, Protected: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
	}
	if style == StylePaper {
		okLabel := p.NewLabel("alu_ok")
		insts = append(insts,
			protBranch(isa.NewJcc(isa.CondE, 0), okLabel),
			callFaulthandler(),
		)
		blocks = []*bir.Block{
			{Insts: insts},
			{Label: okLabel, Insts: tail},
		}
	} else {
		insts = append(insts, protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel))
		insts = append(insts, tail...)
		blocks = []*bir.Block{{Insts: insts}}
	}
	_ = happyLabel
	return blocks, nil
}

// aluScaffold validates an ALU site and builds the shared machinery of
// both the order-1 and order-2 duplication patterns: the scratch
// register and the two compute-into-scratch instruction pairs, with
// rsp-relative displacements shifted for the one and two pushes that
// precede them. Carry-consuming ops and narrow destinations (which
// would need masked comparisons) are rejected.
func aluScaffold(in isa.Inst) (scr isa.Reg, mov1, op1, mov2, op2 isa.Inst, err error) {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.INC, isa.DEC, isa.NOT, isa.NEG,
		isa.SHL, isa.SHR, isa.SAR, isa.IMUL:
		// supported
	default:
		return scr, mov1, op1, mov2, op2, fmt.Errorf("%w: %s is not a duplicable ALU op", ErrUnpatchable, in.Op)
	}
	if in.Dst.Kind == isa.KindReg && in.Dst.Width != 8 || in.Dst.Kind == isa.KindMem && in.Dst.Width != 8 {
		// Narrow destinations would need masked comparisons; keep the
		// pattern to the 64-bit common case.
		return scr, mov1, op1, mov2, op2, fmt.Errorf("%w: %d-byte ALU destination", ErrUnpatchable, in.Dst.Width)
	}
	scr, err = pickScratch(in)
	if err != nil {
		return scr, mov1, op1, mov2, op2, err
	}

	// Rebuild the op with D replaced by the scratch register and
	// rsp-relative displacements shifted by delta.
	redo := func(delta int32) (mov, op isa.Inst, err error) {
		d, err := adjustRSP(in.Dst, delta)
		if err != nil {
			return mov, op, err
		}
		s, err := adjustRSP(in.Src, delta)
		if err != nil {
			return mov, op, err
		}
		mov = isa.NewInst(isa.MOV, isa.R(scr), d)
		op = in
		op.Dst = isa.R(scr)
		op.Src = s
		return mov, op, nil
	}
	if mov1, op1, err = redo(8); err != nil {
		return scr, mov1, op1, mov2, op2, err
	}
	mov2, op2, err = redo(16)
	return scr, mov1, op1, mov2, op2, err
}

// PatternFor dispatches on the site's op class.
func PatternFor(p *bir.Program, site bir.Inst, followLabel string, style Style) ([]*bir.Block, error) {
	if style == StyleOrder2 {
		return order2PatternFor(p, site, followLabel)
	}
	switch site.I.Op {
	case isa.MOV, isa.MOVZX, isa.MOVSX, isa.LEA:
		return MovPattern(p, site, followLabel, style)
	case isa.CMP, isa.TEST:
		return CmpPattern(p, site, followLabel, style)
	case isa.JCC:
		return JccPattern(p, site, followLabel, style)
	default:
		if blocks, err := AluPattern(p, site, followLabel, style); err == nil {
			return blocks, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrUnpatchable, site.I.Mnemonic())
	}
}
