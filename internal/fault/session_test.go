package fault

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
)

// TestSnapshotPathMatchesColdPath is the engine's ground truth: every
// injection simulated from a mid-trace copy-on-write snapshot must
// classify exactly as the same injection replayed from scratch — for
// every registered fault model.
func TestSnapshotPathMatchesColdPath(t *testing.T) {
	for _, models := range [][]Model{
		{ModelSkip}, {ModelBitFlip}, {ModelRegFlip}, {ModelMultiSkip}, {ModelDataFlip},
	} {
		s, err := NewSession(Campaign{
			Binary: buildMini(t),
			Good:   goodPin,
			Bad:    badPin,
			Models: models,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.Faults() {
			warm := s.Simulate(f)
			cold := s.SimulateCold(f)
			if warm != cold {
				t.Errorf("%v [%s]: snapshot path %v, cold path %v", f, f.Model, warm, cold)
			}
		}
	}
}

// TestSessionTransientBitflipMatchesCold covers the restore-after-one-
// fetch variant, whose second FlipBit lands mid-replay.
func TestSessionTransientBitflipMatchesCold(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary:    buildMini(t),
		Good:      goodPin,
		Bad:       badPin,
		Models:    []Model{ModelBitFlip},
		Transient: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Faults() {
		if warm, cold := s.Simulate(f), s.SimulateCold(f); warm != cold {
			t.Errorf("%v: snapshot path %v, cold path %v", f, warm, cold)
		}
	}
}

// TestNilGoodInputReadsEOF: a nil good input must behave as an empty
// stdin (reads return EOF), not silently inherit the snapshot's bad
// input.
func TestNilGoodInputReadsEOF(t *testing.T) {
	// Good oracle: EOF (short read) denies with exit 2; only the exact
	// pin is accepted. With nil Good the good run must take the
	// short-read path, keeping the oracles distinguishable.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	cmp rax, 8
	jne short_read
	mov rax, 60
	mov rdi, 1
	syscall
short_read:
	mov rax, 60
	mov rdi, 2
	syscall
.bss
buf: .zero 8
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(Campaign{
		Binary: bin,
		Good:   nil, // EOF oracle
		Bad:    badPin,
		Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, bad := s.Oracles()
	if good.ExitCode != 2 || bad.ExitCode != 1 {
		t.Errorf("oracles = good exit %d, bad exit %d; want 2 and 1 (nil good input leaked the bad bytes?)",
			good.ExitCode, bad.ExitCode)
	}
}

// TestExecuteShardRejectsBadIndex: an out-of-range shard must fail
// loudly, not silently drop faults.
func TestExecuteShardRejectsBadIndex(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 2}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExecuteShard(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			s.ExecuteShard(bad[0], bad[1], 1, nil)
		}()
	}
}

// TestExecuteShardCoversAllFaults: round-robin shards partition the
// fault list, and recombining them reproduces the unsharded order.
func TestExecuteShardCoversAllFaults(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t),
		Good:   goodPin,
		Bad:    badPin,
		Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, fullTally := s.ExecuteShard(0, 1, 2, nil)
	if fullTally.Total() != len(full) || len(full) != s.NumFaults() {
		t.Fatalf("full shard: %d injections, tally %d, faults %d",
			len(full), fullTally.Total(), s.NumFaults())
	}

	const n = 3
	var shards [n][]Injection
	for i := 0; i < n; i++ {
		shards[i], _ = s.ExecuteShard(i, n, 1, nil)
	}
	var merged []Injection
	cursor := [n]int{}
	for j := 0; j < len(full); j++ {
		w := j % n
		merged = append(merged, shards[w][cursor[w]])
		cursor[w]++
	}
	if !reflect.DeepEqual(merged, full) {
		t.Error("recombined shards differ from the unsharded run")
	}
}

// TestTallyMatchesReportCounts: the lock-free per-worker tallies must
// agree with recounting the report.
func TestTallyMatchesReportCounts(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t),
		Good:   goodPin,
		Bad:    badPin,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, tally := s.ExecuteShard(0, 1, 4, nil)
	rep := s.Report(inj)
	for _, o := range []Outcome{OutcomeIgnored, OutcomeSuccess, OutcomeCrash, OutcomeDetected} {
		if tally.Count(o) != rep.Count(o) {
			t.Errorf("%s: tally %d, report %d", o, tally.Count(o), rep.Count(o))
		}
	}
}

// TestFilterModels: filtering a both-models report by one model equals
// running that model alone.
func TestFilterModels(t *testing.T) {
	bin := buildMini(t)
	both, err := Run(Campaign{Binary: bin, Good: goodPin, Bad: badPin,
		Models: []Model{ModelSkip, ModelBitFlip}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{ModelSkip, ModelBitFlip} {
		solo, err := Run(Campaign{Binary: bin, Good: goodPin, Bad: badPin, Models: []Model{m}})
		if err != nil {
			t.Fatal(err)
		}
		got := both.FilterModels(m)
		if !reflect.DeepEqual(got.Injections, solo.Injections) {
			t.Errorf("%s: filtered view differs from single-model campaign", m)
		}
	}
}
