package fault

import (
	"testing"
	"time"

	"github.com/r2r/reinforce/internal/asm"
)

// TestHangingFaultsClassifiedQuickly: a fault that turns the program
// into an infinite loop must be classified as a crash within the
// adaptive injection budget, not ground out against the full reference
// step limit (the difference between seconds and hours in big
// campaigns).
func TestHangingFaultsClassifiedQuickly(t *testing.T) {
	// Skipping "dec rcx" never terminates the loop.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	mov rcx, 50
spin:
	dec rcx
	jne spin
	movzx rax, byte ptr [rip+buf]
	cmp rax, 'y'
	jne deny
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 60
	mov rdi, 1
	syscall
.bss
buf: .zero 1
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := Run(Campaign{
		Binary: bin,
		Good:   []byte("y"),
		Bad:    []byte("n"),
		Models: []Model{ModelSkip},
		// Enormous reference budget: the adaptive injection limit must
		// protect us regardless.
		StepLimit: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Count(OutcomeCrash) == 0 {
		t.Error("no crash outcomes; the hang-inducing skip should be classified as crash")
	}
	if elapsed > 30*time.Second {
		t.Errorf("campaign took %v; adaptive injection limit not applied", elapsed)
	}
}

// TestInjectionStepLimitOverride: an explicit injection budget wins.
func TestInjectionStepLimitOverride(t *testing.T) {
	bin, err := asm.Assemble(miniPincheck, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Campaign{
		Binary:             bin,
		Good:               goodPin,
		Bad:                badPin,
		Models:             []Model{ModelSkip},
		InjectionStepLimit: 3, // absurdly small: everything "crashes"
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Count(OutcomeCrash); got != len(rep.Injections) {
		t.Errorf("crashes = %d of %d; tiny injection budget should kill every run",
			got, len(rep.Injections))
	}
}
