// Order-3 multi-fault campaigns: deterministic enumeration and
// simulation of fault *triples*. The cubic space makes exhaustive
// order-3 sweeps infeasible without the equivalence pruning in
// prune.go (ARMORY's scaling argument); the engine therefore only
// exposes budget-capped enumeration and runs the triple tree through a
// PairPruner. Determinism guarantees match the pair engine: the triple
// list is a pure function of the solo sweep, and results are
// bit-identical across worker counts and shard decompositions.
package fault

import (
	"sync"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/emu"
)

// FaultTriple is an ordered triple of faults injected into one run;
// trace order is strictly First < Second < Third.
type FaultTriple struct {
	First  Fault
	Second Fault
	Third  Fault
}

// String renders the triple for reports.
func (t FaultTriple) String() string {
	return t.First.String() + " + " + t.Second.String() + " + " + t.Third.String()
}

// Rest is the triple's continuation after its first fault.
func (t FaultTriple) Rest() FaultPair {
	return FaultPair{First: t.Second, Second: t.Third}
}

// TripleInjection is the result of simulating one fault triple.
type TripleInjection struct {
	Triple  FaultTriple
	Outcome Outcome
}

// DefaultMaxTriples caps order-3 enumeration when the caller supplies
// no budget. The unpruned triple space is cubic in the fault list, so
// the default budget is deliberately modest; experiments that want it
// wider pass their own cap.
const DefaultMaxTriples = 2048

// EnumerateTriples builds the deterministic order-3 work list from a
// completed order-1 sweep under the same rules as EnumeratePairs:
// components are drawn from detected/ignored solo faults, trace
// indices are strictly increasing across the triple, enumeration walks
// candidates in campaign order (first outer, third inner), and stops
// at max triples (0 means DefaultMaxTriples).
func EnumerateTriples(solo []Injection, max int) []FaultTriple {
	if max <= 0 {
		max = DefaultMaxTriples
	}
	var cand []Fault
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			cand = append(cand, inj.Fault)
		}
	}
	var out []FaultTriple
	for i := range cand {
		for j := range cand {
			if cand[j].TraceIndex <= cand[i].TraceIndex {
				continue
			}
			for k := range cand {
				if cand[k].TraceIndex <= cand[j].TraceIndex {
					continue
				}
				out = append(out, FaultTriple{First: cand[i], Second: cand[j], Third: cand[k]})
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// tripleConfig composes all three faults' emulator hooks onto one run;
// like pairConfig, each hook keys off the absolute step counter, so
// the injections are independent.
func (s *Session) tripleConfig(t FaultTriple) emu.Config {
	cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
	for _, f := range [3]Fault{t.First, t.Second, t.Third} {
		if spec := SpecOf(f.Model); spec != nil {
			spec.Hooks(f, &cfg)
		}
	}
	return cfg
}

// SimulateTriple runs one order-3 injection from the copy-on-write
// snapshot nearest its earliest fault and classifies the outcome.
// Safe for concurrent use.
func (s *Session) SimulateTriple(t FaultTriple) Outcome {
	first := t.First.TraceIndex
	if t.Second.TraceIndex < first {
		first = t.Second.TraceIndex
	}
	if t.Third.TraceIndex < first {
		first = t.Third.TraceIndex
	}
	m := s.rungFor(uint64(first)).Resume(s.tripleConfig(t))
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// SimulateTripleCold replays an order-3 injection from a freshly
// initialized machine — the reference semantics the snapshot and
// pruned paths must match bit for bit. Tests cross-validate; the
// engine never uses it.
func (s *Session) SimulateTripleCold(t FaultTriple) Outcome {
	cfg := s.tripleConfig(t)
	cfg.Stdin = s.c.Bad
	m := emu.New(s.c.Binary, cfg)
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// tripleGroup is one node of the order-3 snapshot tree: every selected
// triple sharing one first fault whose second fault strikes at or
// after the first's effect horizon.
type tripleGroup struct {
	first Fault
	end   uint64
	idx   []int
}

// runTripleGroup executes one order-3 snapshot-tree node through the
// pruner: resume with the first fault's hooks, run to its effect
// horizon, digest. A reference-equal state collapses each triple to
// its remaining pair — taken from a registered pair sweep when the
// pair was enumerated there, otherwise class-cached like any other
// continuation. Non-reference states share continuation outcomes per
// equivalence class. The fork simulation composes the second and third
// faults' hooks onto a snapshot resume, which matches SimulateTriple
// bit for bit: before the snapshot step neither later hook could have
// fired (eligibility requires Second.TraceIndex >= end and the triple
// is trace-ordered), and after it the first fault's hooks are inert.
func (s *Session) runTripleGroup(pr *PairPruner, g *tripleGroup, sel []FaultTriple, outcomes []Outcome, tally *Tally, tick func()) {
	// StaticInert fast path: a fully transparent first window leaves
	// the machine exactly on the reference trajectory, so each triple
	// runs like its remaining pair alone — known when a pair sweep was
	// registered. Any missing pair outcome falls back to the full
	// dynamic path for the whole group.
	if s.transparentFirst(g.first) {
		rests := make([]Outcome, len(g.idx))
		known := true
		for n, i := range g.idx {
			o, ok := pr.pairOutcome(sel[i].Rest())
			if !ok {
				known = false
				break
			}
			rests[n] = o
		}
		if known {
			for n, i := range g.idx {
				o := rests[n]
				outcomes[i] = o
				tally[o]++
				tick()
			}
			pr.inert.Add(int64(len(g.idx)))
			return
		}
	}
	m := s.rungFor(uint64(g.first.TraceIndex)).Resume(s.injectionConfig(g.first))
	res, done, err := m.RunUntil(g.end)
	if done {
		o := classify(res, err, s.good)
		pr.sim.Add(int64(len(g.idx)))
		for _, i := range g.idx {
			outcomes[i] = o
			tally[o]++
			tick()
		}
		m.Release()
		return
	}
	digest := m.StateDigest()
	refEqual := digest == pr.refDigestAt(g.end)

	var cl *equivClass
	var snap *emu.Snapshot
	fork := func(rest FaultPair) func() Outcome {
		return func() Outcome {
			cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
			for _, f := range [2]Fault{rest.First, rest.Second} {
				if spec := SpecOf(f.Model); spec != nil {
					spec.Hooks(f, &cfg)
				}
			}
			m2 := snap.Resume(cfg)
			res2, err2 := m2.Run()
			o := classify(res2, err2, s.good)
			m2.Release()
			return o
		}
	}
	for _, i := range g.idx {
		rest := sel[i].Rest()
		var o Outcome
		if po, ok := pr.pairOutcome(rest); refEqual && ok {
			// First fault's effects died out: the triple runs exactly
			// like its remaining pair, already swept at order 2.
			o = po
			pr.refEquiv.Add(1)
		} else {
			if snap == nil {
				cl = pr.classFor(g.end, digest)
				snap = m.Snapshot()
				snap.SeedDecodeCache(s.codeCache)
				snap.SeedProgram(s.prog)
			}
			o = pr.restOutcome(cl, rest, fork(rest))
		}
		outcomes[i] = o
		tally[o]++
		tick()
	}
	// No-op when a snapshot froze m; recycles the buffers otherwise
	// (every triple inherited its remaining pair's outcome).
	m.Release()
}

// ExecuteTripleShard simulates the triples of shard shardIndex (of
// shardCount round-robin shards) on a worker pool, always through the
// state-hash equivalence pruner — order 3 is only feasible pruned.
// Grouping mirrors ExecutePairShard: triples whose second fault
// strikes at or after the first's effect horizon share a first-fault
// snapshot-tree node; the rest take the per-triple SimulateTriple
// path. Results land at fixed positions and are bit-identical to
// SimulateTriple regardless of worker count, grouping, or what the
// pruner inherited.
func (s *Session) ExecuteTripleShard(triples []FaultTriple, pr *PairPruner, shardIndex, shardCount, workers int, progress func(done, total int)) ([]TripleInjection, Tally) {
	sel := ShardSelect(triples, shardIndex, shardCount)
	outcomes := make([]Outcome, len(sel))
	if len(sel) == 0 {
		return make([]TripleInjection, 0), Tally{}
	}

	groupOf := make(map[Fault]*tripleGroup)
	var groups []*tripleGroup
	var loose []int
	for i, t := range sel {
		end, ok := effectEnd(t.First)
		if !ok || uint64(t.Second.TraceIndex) < end {
			loose = append(loose, i)
			continue
		}
		g, seen := groupOf[t.First]
		if !seen {
			g = &tripleGroup{first: t.First, end: end}
			groupOf[t.First] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}

	units := len(groups) + len(loose)
	var done atomic.Int64
	tick := func() {
		if progress != nil {
			progress(int(done.Add(1)), len(sel))
		}
	}
	var mu sync.Mutex
	var tally Tally
	s.executePool(workers).Execute(units, func(lo, hi int) {
		var local Tally
		for u := lo; u < hi; u++ {
			if u < len(groups) {
				s.runTripleGroup(pr, groups[u], sel, outcomes, &local, tick)
				continue
			}
			i := loose[u-len(groups)]
			o := s.SimulateTriple(sel[i])
			pr.sim.Add(1)
			outcomes[i] = o
			local[o]++
			tick()
		}
		mu.Lock()
		tally.Add(local)
		mu.Unlock()
	})
	out := make([]TripleInjection, len(sel))
	for i, t := range sel {
		out[i] = TripleInjection{Triple: t, Outcome: outcomes[i]}
	}
	return out, tally
}
