package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/trace"
)

// oneBitPin is a checker whose good and bad inputs differ in exactly
// one bit ('B'=0x42 vs 'C'=0x43), so a single register or data bit flip
// can turn the bad run into the good one — the success witness for the
// reg-flip and data-flip models.
const oneBitPin = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	movzx rax, byte ptr [rip+buf]
	cmp rax, 66
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 1
`

func buildOneBit(t *testing.T) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(oneBitPin, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// legacyEnumerate is the pre-refactor closed-enum fault enumeration,
// kept verbatim as the golden reference: the pluggable specs must
// reproduce the paper models' fault lists bit for bit, so pre-refactor
// skip/bitflip reports stay byte-identical.
func legacyEnumerate(c Campaign, badTrace *trace.Trace) []Fault {
	var out []Fault
	for _, model := range c.Models {
		seen := make(map[uint64]map[int]bool)
		mark := func(addr uint64, bit int) bool {
			if !c.DedupSites {
				return true
			}
			bits, ok := seen[addr]
			if !ok {
				bits = make(map[int]bool)
				seen[addr] = bits
			}
			if bits[bit] {
				return false
			}
			bits[bit] = true
			return true
		}
		for i, e := range badTrace.Entries {
			switch model {
			case ModelSkip:
				if mark(e.Addr, 0) {
					out = append(out, Fault{
						Model: ModelSkip, TraceIndex: i,
						Addr: e.Addr, Op: e.Op, Cond: e.Cond,
					})
				}
			case ModelBitFlip:
				for bit := 0; bit < e.Len*8; bit++ {
					if mark(e.Addr, bit) {
						out = append(out, Fault{
							Model: ModelBitFlip, TraceIndex: i,
							Addr: e.Addr, Op: e.Op, Cond: e.Cond,
							Bit: bit, Transient: c.Transient,
						})
					}
				}
			}
		}
	}
	return out
}

// TestSpecEnumerationMatchesLegacy: the refactor's ground truth — the
// spec-driven enumeration of the paper's two models is bit-identical to
// the pre-refactor closed-enum code, under every option that shapes the
// fault list.
func TestSpecEnumerationMatchesLegacy(t *testing.T) {
	bin := buildMini(t)
	configs := []Campaign{
		{Models: []Model{ModelSkip, ModelBitFlip}},
		{Models: []Model{ModelBitFlip}, Transient: true},
		{Models: []Model{ModelSkip, ModelBitFlip}, DedupSites: true},
	}
	for _, c := range configs {
		c.Binary, c.Good, c.Bad = bin, goodPin, badPin
		s, err := NewSession(c)
		if err != nil {
			t.Fatal(err)
		}
		want := legacyEnumerate(c, s.trace)
		if !reflect.DeepEqual(s.Faults(), want) {
			t.Errorf("campaign %+v: spec enumeration differs from legacy enumeration", c)
		}
	}
}

func TestParseModels(t *testing.T) {
	cases := []struct {
		in   string
		want []Model
	}{
		{"skip", []Model{ModelSkip}},
		{"bitflip", []Model{ModelBitFlip}},
		{"", []Model{ModelSkip, ModelBitFlip}},
		{"both", []Model{ModelSkip, ModelBitFlip}},
		{"reg-flip,multi-skip,data-flip", []Model{ModelRegFlip, ModelMultiSkip, ModelDataFlip}},
		{"instruction-skip, single-bit-flip", []Model{ModelSkip, ModelBitFlip}},
		{"all", []Model{ModelSkip, ModelBitFlip, ModelRegFlip, ModelMultiSkip, ModelDataFlip}},
		{"skip,both", []Model{ModelSkip, ModelBitFlip}}, // dedup
	}
	for _, tc := range cases {
		got, err := ParseModels(tc.in)
		if err != nil {
			t.Errorf("ParseModels(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseModels(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseModels("skip,warp-core-breach"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestParseModelErrorListsCatalog: unknown names must fail with the
// registered catalog spelled out, not opaquely.
func TestParseModelErrorListsCatalog(t *testing.T) {
	_, err := ParseModel("warp-core-breach")
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	msg := err.Error()
	for _, want := range []string{"warp-core-breach", "registered:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	for _, m := range RegisteredModels() {
		if !strings.Contains(msg, m.String()) {
			t.Errorf("error %q does not list %s", msg, m)
		}
	}
}

// TestCatalogNames: canonical names first, aliases in parentheses, in
// id order.
func TestCatalogNames(t *testing.T) {
	names := CatalogNames()
	if len(names) != len(RegisteredModels()) {
		t.Fatalf("%d catalog entries for %d models", len(names), len(RegisteredModels()))
	}
	if !strings.HasPrefix(names[0], "instruction-skip") || !strings.Contains(names[0], "skip") {
		t.Errorf("first entry %q: want instruction-skip with its alias", names[0])
	}
	for _, n := range names {
		if strings.HasPrefix(n, "(") {
			t.Errorf("entry %q starts with an alias group", n)
		}
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	for _, m := range RegisteredModels() {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		want := `"` + m.String() + `"`
		if string(data) != want {
			t.Errorf("model %d marshals to %s, want %s", m, data, want)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("model %v round-tripped to %v", m, back)
		}
	}
	var bad Model
	if err := json.Unmarshal([]byte(`"no-such-model"`), &bad); err == nil {
		t.Error("unknown model name unmarshalled")
	}
}

func TestOutcomeJSONRoundTrip(t *testing.T) {
	for _, o := range []Outcome{OutcomeIgnored, OutcomeSuccess, OutcomeCrash, OutcomeDetected} {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var back Outcome
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("outcome %v: %v", o, err)
		}
		if back != o {
			t.Errorf("outcome %v round-tripped to %v", o, back)
		}
	}
}

// TestFaultStringIncludesTransient: transient and persistent bit flips
// must not render identically in reports.
func TestFaultStringIncludesTransient(t *testing.T) {
	f := Fault{Model: ModelBitFlip, TraceIndex: 3, Addr: 0x401000, Op: isa.CMP, Bit: 5}
	persistent := f.String()
	f.Transient = true
	transient := f.String()
	if persistent == transient {
		t.Errorf("transient flag invisible: both render as %q", persistent)
	}
	if !strings.Contains(transient, "transient") {
		t.Errorf("transient fault %q does not say so", transient)
	}
}

func TestFaultStringPerModel(t *testing.T) {
	faults := []Fault{
		{Model: ModelSkip, TraceIndex: 1, Addr: 0x401000, Op: isa.MOV},
		{Model: ModelBitFlip, TraceIndex: 1, Addr: 0x401000, Op: isa.MOV, Bit: 9},
		{Model: ModelRegFlip, TraceIndex: 1, Addr: 0x401000, Op: isa.MOV, Reg: isa.RBX, Bit: 7},
		{Model: ModelMultiSkip, TraceIndex: 1, Addr: 0x401000, Op: isa.MOV, Window: 3},
		{Model: ModelDataFlip, TraceIndex: 1, Addr: 0x401000, Op: isa.MOV, Bit: 2},
	}
	seen := map[string]bool{}
	for _, f := range faults {
		s := f.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("fault %+v renders as %q", f, s)
		}
		if seen[s] {
			t.Errorf("duplicate rendering %q", s)
		}
		seen[s] = true
	}
	if s := faults[2].String(); !strings.Contains(s, "rbx") {
		t.Errorf("regflip fault %q does not name the register", s)
	}
}

// TestUnknownModelRejected: campaigns over unregistered models fail
// loudly instead of silently enumerating nothing.
func TestUnknownModelRejected(t *testing.T) {
	_, err := Run(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{Model(250)},
	})
	if err == nil {
		t.Fatal("campaign over unregistered model succeeded")
	}
}

// TestRegFlipFindsSingleBitVuln: flipping the low bit of rax right
// before the cmp turns the bad pin into the good one.
func TestRegFlipFindsSingleBitVuln(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildOneBit(t), Good: []byte("B"), Bad: []byte("C"),
		Models: []Model{ModelRegFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, inj := range rep.Successful() {
		if inj.Fault.Op == isa.CMP && inj.Fault.Reg == isa.RAX && inj.Fault.Bit == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("rax bit-0 flip at cmp not among successes: %v", rep.Successful())
	}
}

// TestDataFlipFindsSingleBitVuln: flipping the low bit of the input
// cell as the movzx loads it turns the bad pin into the good one.
func TestDataFlipFindsSingleBitVuln(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildOneBit(t), Good: []byte("B"), Bad: []byte("C"),
		Models: []Model{ModelDataFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, inj := range rep.Successful() {
		if inj.Fault.Op == isa.MOVZX && inj.Fault.Bit == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("buf bit-0 flip at movzx not among successes: %v", rep.Successful())
	}
}

// TestMultiSkipFindsWindowVuln: a window covering the jne (and the cmp
// before it) falls through into the grant path.
func TestMultiSkipFindsWindowVuln(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelMultiSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Successful()) == 0 {
		t.Fatal("multi-skip campaign found no vulnerabilities in unprotected pincheck")
	}
	for _, inj := range rep.Injections {
		if inj.Fault.Window < 2 || inj.Fault.Window > 4 {
			t.Errorf("enumerated window %d outside [2,4]", inj.Fault.Window)
		}
	}
}

// TestDataFlipSkipsLEA: lea computes an address without touching
// memory, so it must not be a data-fault site.
func TestDataFlipSkipsLEA(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelDataFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Injections) == 0 {
		t.Fatal("no data-flip injections on a program full of memory operands")
	}
	for _, inj := range rep.Injections {
		if inj.Fault.Op == isa.LEA {
			t.Errorf("lea enumerated as a data-fault site: %v", inj.Fault)
		}
	}
}

// TestReadRegs spot-checks the register liveness rules behind reg-flip
// enumeration.
func TestReadRegs(t *testing.T) {
	targets := func(in isa.Inst) map[isa.Reg]int {
		out := map[isa.Reg]int{}
		for _, rt := range readRegs(&in) {
			out[rt.reg] = rt.bits
		}
		return out
	}
	// mov rax, rbx: rbx read at 64 bits, rax write-only.
	got := targets(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.R(isa.RBX)))
	if !reflect.DeepEqual(got, map[isa.Reg]int{isa.RBX: 64}) {
		t.Errorf("mov rax, rbx reads %v", got)
	}
	// add rax, [rbx+8]: rax read-modify, rbx is an address (64 bits).
	got = targets(isa.NewInst(isa.ADD, isa.R(isa.RAX), isa.M(isa.RBX, 8)))
	if !reflect.DeepEqual(got, map[isa.Reg]int{isa.RAX: 64, isa.RBX: 64}) {
		t.Errorf("add rax, [rbx+8] reads %v", got)
	}
	// syscall: implicit dispatch + argument registers.
	got = targets(isa.NewInst(isa.SYSCALL))
	want := map[isa.Reg]int{isa.RAX: 64, isa.RDX: 64, isa.RSI: 64, isa.RDI: 64}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("syscall reads %v, want %v", got, want)
	}
	// pop rcx: reads rsp, rcx is write-only.
	got = targets(isa.NewInst(isa.POP, isa.R(isa.RCX)))
	if !reflect.DeepEqual(got, map[isa.Reg]int{isa.RSP: 64}) {
		t.Errorf("pop rcx reads %v", got)
	}
}
