package fault

import (
	"strings"
	"testing"
)

// FuzzParseModel: any accepted name resolves to a registered spec, and
// the model's canonical name reparses to the same model — the property
// that makes Model.String() safe in plan keys and JSON.
func FuzzParseModel(f *testing.F) {
	for _, seed := range []string{"skip", "bitflip", "bit-flip", "reg-flip",
		"regflip", "multi-skip", "data-flip", " skip ", "", "both", "all",
		"SKIP", "skip,bitflip", "unknown", "skip\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		if err != nil {
			return
		}
		if SpecOf(m) == nil {
			t.Fatalf("ParseModel(%q) = %v has no registered spec", s, m)
		}
		again, err := ParseModel(m.String())
		if err != nil || again != m {
			t.Fatalf("canonical name %q of ParseModel(%q) reparses to %v, %v", m, s, again, err)
		}
	})
}

// FuzzParseModels: any accepted spec expands to a non-empty,
// duplicate-free list of registered models, and the canonical
// comma-joined rendering reparses to the identical list.
func FuzzParseModels(f *testing.F) {
	for _, seed := range []string{"", "both", "all", "skip,bitflip",
		"skip, bitflip ,reg-flip", "all,skip", "both,both", ",",
		"skip,,bitflip", "nope", "all,nope"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ms, err := ParseModels(s)
		if err != nil {
			return
		}
		if len(ms) == 0 {
			t.Fatalf("ParseModels(%q) accepted an empty model list", s)
		}
		seen := map[Model]bool{}
		names := make([]string, 0, len(ms))
		for _, m := range ms {
			if SpecOf(m) == nil {
				t.Fatalf("ParseModels(%q) yielded unregistered model %v", s, m)
			}
			if seen[m] {
				t.Fatalf("ParseModels(%q) yielded duplicate model %v", s, m)
			}
			seen[m] = true
			names = append(names, m.String())
		}
		again, err := ParseModels(strings.Join(names, ","))
		if err != nil {
			t.Fatalf("canonical list %q of ParseModels(%q) fails to reparse: %v", names, s, err)
		}
		if len(again) != len(ms) {
			t.Fatalf("canonical reparse of %q: %d models, want %d", s, len(again), len(ms))
		}
		for i := range again {
			if again[i] != ms[i] {
				t.Fatalf("canonical reparse of %q differs at %d: %v vs %v", s, i, again[i], ms[i])
			}
		}
	})
}
