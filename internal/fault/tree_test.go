package fault

import (
	"reflect"
	"testing"
)

// TestPairShardTreeMatchesColdPath: the first-fault snapshot tree is
// the order-2 engine's new execution strategy, so every outcome it
// produces must classify exactly as a cold two-hook replay from
// _start — including multi-skip first faults (whose effect window can
// swallow the second fault's step, forcing the loose path) and
// transient bit flips (whose restore fetch extends the horizon by one
// step).
func TestPairShardTreeMatchesColdPath(t *testing.T) {
	for _, tc := range []struct {
		name      string
		models    []Model
		transient bool
	}{
		{"skip", []Model{ModelSkip}, false},
		{"bitflip", []Model{ModelBitFlip}, false},
		{"bitflip-transient", []Model{ModelBitFlip}, true},
		{"multiskip+regflip", []Model{ModelMultiSkip, ModelRegFlip}, false},
		{"skip+dataflip", []Model{ModelSkip, ModelDataFlip}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSession(Campaign{
				Binary: buildMini(t), Good: goodPin, Bad: badPin,
				Models: tc.models, Transient: tc.transient,
			})
			if err != nil {
				t.Fatal(err)
			}
			solo, _ := s.ExecuteShard(0, 1, 0, nil)
			pairs := EnumeratePairs(solo, 300)
			if len(pairs) == 0 {
				t.Skip("no pairs for this model mix")
			}
			tree, tally := s.ExecutePairShard(pairs, 0, 1, 4, nil)
			var wantTally Tally
			for i, p := range pairs {
				cold := s.SimulatePairCold(p)
				wantTally[cold]++
				if tree[i].Outcome != cold {
					t.Errorf("%v: tree path %v, cold path %v", p, tree[i].Outcome, cold)
				}
			}
			if tally != wantTally {
				t.Errorf("tree tally %v, cold tally %v", tally, wantTally)
			}
		})
	}
}

// TestPairAdjacentSecondFault pins the loose-path boundary: a pair
// whose second fault strikes inside the first's effect window (the
// immediately following step, inside a multi-skip window) must still
// match the cold path even though the snapshot tree cannot serve it.
func TestPairAdjacentSecondFault(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelMultiSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	// Hand-build adjacent pairs from eligible faults: second fault at
	// the very next trace index, i.e. within the first's skip window.
	var eligible []Fault
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			eligible = append(eligible, inj.Fault)
		}
	}
	var pairs []FaultPair
	for _, a := range eligible {
		for _, b := range eligible {
			if b.TraceIndex == a.TraceIndex+1 {
				pairs = append(pairs, FaultPair{First: a, Second: b})
			}
		}
		if len(pairs) >= 50 {
			break
		}
	}
	if len(pairs) == 0 {
		t.Skip("no adjacent pairs")
	}
	got, _ := s.ExecutePairShard(pairs, 0, 1, 2, nil)
	for i, p := range pairs {
		if cold := s.SimulatePairCold(p); got[i].Outcome != cold {
			t.Errorf("%v: engine %v, cold %v", p, got[i].Outcome, cold)
		}
	}
}

// TestSimulateRecordConsistent: the recording variant must classify
// exactly like Simulate, report a footprint that includes the fault
// site's page, and be deterministic.
func TestSimulateRecordConsistent(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelSkip, ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Faults() {
		rec := s.SimulateRecord(f)
		if got := s.Simulate(f); rec.Outcome != got {
			t.Errorf("%v: SimulateRecord %v, Simulate %v", f, rec.Outcome, got)
		}
		if len(rec.Pages) == 0 {
			t.Fatalf("%v: empty footprint", f)
		}
		sitePage := f.Addr &^ 0xFFF
		found := false
		for _, pa := range rec.Pages {
			if pa == sitePage {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: footprint %x misses the fault site page %#x", f, rec.Pages, sitePage)
		}
		if again := s.SimulateRecord(f); !reflect.DeepEqual(rec, again) {
			t.Errorf("%v: SimulateRecord not deterministic", f)
		}
	}
}
