package fault

import (
	"sort"
	"sync"

	"github.com/r2r/reinforce/internal/emu"
)

// Checkpoint ladder: the fixed-interval checkpoints of runReference
// keep prefix replay cheap for short traces, but once the interval
// doubles past maxCheckpoints the gap between a fault site and its
// nearest checkpoint grows linearly with trace length. The ladder
// densifies on demand: when an injection must replay more than
// ladderMinGap steps of prefix, the replay is split at the midpoint,
// a snapshot is taken there and kept for the whole campaign, and the
// search repeats on the remaining half. Every rung lies on the
// reference trajectory (rungs are built by replaying hook-free from an
// existing rung), so any injection may resume from any rung at or
// before its fault step. Reaching a step then costs O(log gap) replay
// work amortized across the campaign instead of O(gap) per injection.
const (
	ladderMinGap   = 512  // gaps at or below this are replayed directly
	maxLadderRungs = 1024 // memory bound; beyond it the ladder stops growing
)

// ladder is a concurrently growable set of reference-trajectory
// snapshots, ascending by step.
type ladder struct {
	mu    sync.RWMutex
	rungs []*emu.Snapshot
}

// newLadder seeds the ladder with the reference run's checkpoints
// (ascending by step; rungs[0] is the entry state).
func newLadder(ckpts []*emu.Snapshot) *ladder {
	return &ladder{rungs: append([]*emu.Snapshot(nil), ckpts...)}
}

// nearest returns the latest rung taken at or before step.
func (l *ladder) nearest(step uint64) *emu.Snapshot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := sort.Search(len(l.rungs), func(i int) bool {
		return l.rungs[i].Steps() > step
	})
	return l.rungs[i-1]
}

// insert adds a rung, keeping the slice sorted; a rung at an already
// occupied step is dropped (concurrent workers bisect the same gap).
// Returns false when the ladder is full.
func (l *ladder) insert(snap *emu.Snapshot) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.rungs) >= maxLadderRungs {
		return false
	}
	i := sort.Search(len(l.rungs), func(i int) bool {
		return l.rungs[i].Steps() >= snap.Steps()
	})
	if i < len(l.rungs) && l.rungs[i].Steps() == snap.Steps() {
		return true
	}
	l.rungs = append(l.rungs, nil)
	copy(l.rungs[i+1:], l.rungs[i:])
	l.rungs[i] = snap
	return true
}

// full reports whether the ladder stopped growing.
func (l *ladder) full() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.rungs) >= maxLadderRungs
}

// rungFor returns a reference-trajectory snapshot at or before step,
// bisecting oversized gaps with new rungs as it goes. The step is
// capped at the injection budget so a resumed machine can never start
// beyond its own StepLimit (which would change how budget-cut runs
// report their step counts).
//
// Rung positions depend on which injections ran first, so callers must
// not derive deterministic outputs from the returned snapshot's step —
// only from the trajectory itself, which every rung shares.
func (s *Session) rungFor(step uint64) *emu.Snapshot {
	target := step
	if lim := s.c.InjectionStepLimit; lim > 0 && target > lim-1 {
		target = lim - 1
	}
	for {
		ck := s.ladder.nearest(target)
		gap := target - ck.Steps()
		if gap <= ladderMinGap || s.ladder.full() {
			return ck
		}
		mid := ck.Steps() + (gap+1)/2
		// Pristine hook-free replay: the new rung lies on the reference
		// trajectory, exactly like runReference's own checkpoints.
		m := ck.Resume(emu.Config{StepLimit: s.c.StepLimit, SingleStep: s.c.SingleStep})
		if _, _, err := m.RunUntil(mid); err != nil || m.Exited || m.Steps < mid {
			// The reference trajectory ends before mid (it cannot for a
			// trace index, but stay defensive): the current rung is the
			// best resumable state.
			m.Release()
			return ck
		}
		snap := m.Snapshot()
		snap.SeedDecodeCache(s.codeCache)
		snap.SeedProgram(s.prog)
		s.ladder.insert(snap)
		// The donor froze into the snapshot; Release is a no-op for it.
	}
}
