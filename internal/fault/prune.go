// Fault-equivalence-class pruning: sound pre-campaign reductions that
// classify injections without simulating them, while keeping every
// report bit-identical to the exhaustive sweep (the contract the
// campaign package's differential harness enforces case by case).
//
// Two reductions, after Boespflug et al.'s redundancy analysis and
// ARMORY's observation that exhaustive fault simulation only scales
// with exactly this kind of pruning:
//
//  1. Static reachability over the recorded reference trace (Pruner).
//     A fault whose trace index lies at or beyond the injection step
//     budget strikes after the budget cuts the run: the un-faulted
//     prefix alone exhausts the budget, and the reference run proves
//     that prefix does not crash earlier, so the outcome is a
//     step-limit crash without simulation. Likewise, a bit flip that
//     corrupts its instruction's encoding beyond decodability crashes
//     at the fetch the reference trace proves is reached — the decode
//     pre-screen, lifted out of Simulate and accounted for here.
//
//  2. State-hash equivalence classing on forked first-fault snapshots
//     (PairPruner). The order-2/3 snapshot tree already runs each
//     first fault once to its effect horizon; digesting the machine
//     state there (emu.Machine.StateDigest) detects two collapses:
//     a digest equal to the reference run's at the same step means the
//     first fault's effects died out, so every pair inherits its
//     second fault's solo outcome (and every triple its remaining
//     pair's outcome); and two groups with equal digests are the same
//     machine, so continuation outcomes computed once per equivalence
//     class are inherited instead of re-simulated.
//
// Soundness rests on the emulator's determinism: equal complete state
// plus equal run configuration (hooks keyed off the absolute step
// counter, the same absolute step limit) is equal continuation.
package fault

import (
	"sync"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/emu"
)

// PruneStats accounts for how a pruned campaign's injections were
// classified. The counts are deterministic for a fixed campaign and
// shard: class simulation holds the class lock, so exactly one group
// pays for each distinct (state, continuation) no matter how workers
// interleave. Like CacheStats, the split is execution accounting, not
// part of the report — pruned and exhaustive reports are bit-identical.
type PruneStats struct {
	StaticBudget int `json:"static_budget"` // classified by the step-budget gate
	StaticDecode int `json:"static_decode"` // classified by the decode pre-screen
	StaticInert  int `json:"static_inert"`  // classified by the inert-window dataflow screen
	RefEquiv     int `json:"ref_equiv"`     // inherited: state re-converged to the reference run
	ClassEquiv   int `json:"class_equiv"`   // inherited from an equivalence-class representative
	Simulated    int `json:"simulated"`     // actually simulated
}

// Pruned returns how many injections were classified without their own
// simulation.
func (s PruneStats) Pruned() int {
	return s.StaticBudget + s.StaticDecode + s.StaticInert + s.RefEquiv + s.ClassEquiv
}

// Total returns the number of injections accounted for.
func (s PruneStats) Total() int { return s.Pruned() + s.Simulated }

// Add accumulates another stats record.
func (s *PruneStats) Add(o PruneStats) {
	s.StaticBudget += o.StaticBudget
	s.StaticDecode += o.StaticDecode
	s.StaticInert += o.StaticInert
	s.RefEquiv += o.RefEquiv
	s.ClassEquiv += o.ClassEquiv
	s.Simulated += o.Simulated
}

// Pruner is the static (order-1) pruning pass over one session: a
// drop-in replacement for Session.Simulate / Session.SimulateRecord
// that answers statically classifiable faults without simulation and
// counts what it did. Safe for concurrent use; plug it into
// ExecuteShardSim like any simulation function.
type Pruner struct {
	s                          *Session
	budget, decode, inert, sim atomic.Int64
}

// NewPruner builds the static pruning pass for this session.
func (s *Session) NewPruner() *Pruner { return &Pruner{s: s} }

// Simulate classifies one fault, statically when sound: a trace index
// at or beyond the injection step budget is a step-limit crash (the
// reference run proves the un-faulted prefix reaches the budget
// without crashing first), an undecodable bit flip is a decode crash
// (see Session.decodePreScreen), and a skip whose window the dataflow
// engine proves inert keeps the reference outcome (see inert.go). The
// budget gate stays first: a fault both beyond budget and inert must
// still answer the crash the exhaustive sweep observes. Everything
// else simulates.
func (p *Pruner) Simulate(f Fault) Outcome {
	if uint64(f.TraceIndex) >= p.s.c.InjectionStepLimit {
		p.budget.Add(1)
		return OutcomeCrash
	}
	if p.s.decodePreScreen(f) {
		p.decode.Add(1)
		return OutcomeCrash
	}
	if o, ok := p.s.inertOutcome(f); ok {
		p.inert.Add(1)
		return o
	}
	p.sim.Add(1)
	return p.s.simulateDynamic(f)
}

// SimulateRecord is Simulate for the evidence-recording path. Only the
// decode pre-screen is answered statically here: a budget-gated crash
// record would carry no simulated code-page footprint, and fabricating
// one that footprint-gated memo reuse could later trust must stay
// byte-identical to SimulateRecord's — simulating keeps that true by
// construction, and a budget small enough to gate also makes the
// simulation it forces cheap (the run is cut at that same budget).
// Inert-window classification is skipped for the same reason: its
// answer rests on whole-binary dataflow facts, not a recordable page
// footprint.
func (p *Pruner) SimulateRecord(f Fault) SimRecord {
	if p.s.decodePreScreen(f) {
		p.decode.Add(1)
		return p.s.preScreenRecord(f)
	}
	p.sim.Add(1)
	return p.s.simulateRecordDynamic(f)
}

// Stats snapshots the pass's accounting.
func (p *Pruner) Stats() PruneStats {
	return PruneStats{
		StaticBudget: int(p.budget.Load()),
		StaticDecode: int(p.decode.Load()),
		StaticInert:  int(p.inert.Load()),
		Simulated:    int(p.sim.Load()),
	}
}

// classKey identifies a state-equivalence class: the absolute step a
// first-fault group was digested at, plus the machine-state digest.
// Groups with equal keys are the same machine about to run the same
// continuation.
type classKey struct {
	step   uint64
	digest [32]byte
}

// equivClass caches the continuation outcomes computed from one
// machine state: per second fault (order-2 groups) and per remaining
// pair (order-3 groups). The lock is held across the simulation that
// fills a missing entry, so each distinct continuation is simulated
// exactly once — which keeps PruneStats deterministic (set-union
// accounting) as well as cheap.
type equivClass struct {
	mu      sync.Mutex
	seconds map[Fault]Outcome
	rests   map[FaultPair]Outcome
}

// refDigest lazily computes one reference-state digest.
type refDigest struct {
	once sync.Once
	d    [32]byte
}

// PairPruner is the state-hash equivalence layer of one pruned
// multi-fault sweep. It is built per execution from the completed solo
// sweep and threaded through the snapshot tree
// (ExecutePairShardPruned, ExecuteTripleShard): each first-fault group
// is digested at its effect horizon and either collapses to known solo
// or pair outcomes (reference-equal state) or shares continuation
// outcomes with every group in its equivalence class. Safe for
// concurrent use by the engine's worker pools.
//
// Sharing is per-pruner: two shards of one campaign executed with
// separate pruners still produce bit-identical reports (inheritance
// only ever substitutes provably equal outcomes), they just discover
// equivalences independently, so their PruneStats may split
// differently between ClassEquiv and Simulated.
type PairPruner struct {
	s     *Session
	solo  map[Fault]Outcome
	pairs map[FaultPair]Outcome // optional, for order-3 reference-equal inheritance

	mu      sync.Mutex
	refs    map[uint64]*refDigest
	classes map[classKey]*equivClass

	refEquiv, classEquiv, inert, sim atomic.Int64
}

// NewPairPruner builds the equivalence layer over a completed solo
// sweep (the same injections the pair list was enumerated from).
func (s *Session) NewPairPruner(solo []Injection) *PairPruner {
	pr := &PairPruner{
		s:       s,
		solo:    make(map[Fault]Outcome, len(solo)),
		refs:    make(map[uint64]*refDigest),
		classes: make(map[classKey]*equivClass),
	}
	for _, inj := range solo {
		pr.solo[inj.Fault] = inj.Outcome
	}
	return pr
}

// SetPairOutcomes registers a completed pair sweep's outcomes, so an
// order-3 sweep on the same pruner can collapse reference-equal triple
// groups to the known outcome of their remaining pair. The slice is
// read once; later calls replace earlier ones.
func (pr *PairPruner) SetPairOutcomes(pairs []PairInjection) {
	m := make(map[FaultPair]Outcome, len(pairs))
	for _, pi := range pairs {
		m[pi.Pair] = pi.Outcome
	}
	pr.mu.Lock()
	pr.pairs = m
	pr.mu.Unlock()
}

// pairOutcome looks up a registered pair outcome.
func (pr *PairPruner) pairOutcome(p FaultPair) (Outcome, bool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	o, ok := pr.pairs[p]
	return o, ok
}

// Stats snapshots the layer's accounting.
func (pr *PairPruner) Stats() PruneStats {
	return PruneStats{
		RefEquiv:    int(pr.refEquiv.Load()),
		ClassEquiv:  int(pr.classEquiv.Load()),
		StaticInert: int(pr.inert.Load()),
		Simulated:   int(pr.sim.Load()),
	}
}

// refDigestAt returns the reference (un-faulted) run's state digest at
// the given absolute step, computed at most once per distinct step by
// resuming the nearest golden checkpoint under the same configuration
// faulted group runs use — so a faulted machine whose digest matches
// has provably re-converged to the reference trajectory.
func (pr *PairPruner) refDigestAt(step uint64) [32]byte {
	pr.mu.Lock()
	rd, ok := pr.refs[step]
	if !ok {
		rd = &refDigest{}
		pr.refs[step] = rd
	}
	pr.mu.Unlock()
	rd.once.Do(func() {
		m := pr.s.rungFor(step).Resume(emu.Config{StepLimit: pr.s.c.InjectionStepLimit, SingleStep: pr.s.c.SingleStep})
		m.RunUntil(step)
		rd.d = m.StateDigest()
		m.Release()
	})
	return rd.d
}

// classFor returns (creating if needed) the equivalence class of a
// digested group state.
func (pr *PairPruner) classFor(step uint64, digest [32]byte) *equivClass {
	k := classKey{step: step, digest: digest}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	cl, ok := pr.classes[k]
	if !ok {
		cl = &equivClass{seconds: make(map[Fault]Outcome), rests: make(map[FaultPair]Outcome)}
		pr.classes[k] = cl
	}
	return cl
}

// secondOutcome returns the class's outcome for continuing with one
// second fault, running sim (under the class lock) on first need.
func (pr *PairPruner) secondOutcome(cl *equivClass, second Fault, sim func() Outcome) Outcome {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if o, ok := cl.seconds[second]; ok {
		pr.classEquiv.Add(1)
		return o
	}
	o := sim()
	pr.sim.Add(1)
	cl.seconds[second] = o
	return o
}

// restOutcome is secondOutcome for an order-3 group's remaining pair.
func (pr *PairPruner) restOutcome(cl *equivClass, rest FaultPair, sim func() Outcome) Outcome {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if o, ok := cl.rests[rest]; ok {
		pr.classEquiv.Add(1)
		return o
	}
	o := sim()
	pr.sim.Add(1)
	cl.rests[rest] = o
	return o
}

// runPairGroupPruned is runPairGroup with the equivalence layer
// spliced in between the horizon run and the snapshot forks. The
// digest comparison happens once per group; pairs then classify by
// solo-outcome inheritance (reference-equal state), class-cache
// inheritance, or a fork simulation recorded into the class.
func (s *Session) runPairGroupPruned(pr *PairPruner, g *pairGroup, sel []FaultPair, outcomes []Outcome, tally *Tally, tick func()) {
	// StaticInert fast path: a fully transparent first window keeps the
	// machine bit-identical to the reference trajectory through the
	// effect horizon, so each pair runs exactly like its second fault
	// alone — already known from the solo sweep. Any missing solo
	// outcome falls back to the full dynamic path for the whole group.
	if s.transparentFirst(g.first) {
		known := true
		for _, i := range g.idx {
			if _, ok := pr.solo[sel[i].Second]; !ok {
				known = false
				break
			}
		}
		if known {
			for _, i := range g.idx {
				o := pr.solo[sel[i].Second]
				outcomes[i] = o
				tally[o]++
				tick()
			}
			pr.inert.Add(int64(len(g.idx)))
			return
		}
	}
	m := s.rungFor(uint64(g.first.TraceIndex)).Resume(s.injectionConfig(g.first))
	res, done, err := m.RunUntil(g.end)
	if done {
		// One run classified the whole group (same as the unpruned
		// tree); not a pruner saving, so it counts as simulated.
		o := classify(res, err, s.good)
		pr.sim.Add(int64(len(g.idx)))
		for _, i := range g.idx {
			outcomes[i] = o
			tally[o]++
			tick()
		}
		m.Release()
		return
	}
	digest := m.StateDigest()
	refEqual := digest == pr.refDigestAt(g.end)

	// Class machinery materializes lazily: a fully reference-equal
	// group never snapshots or touches the class map.
	var cl *equivClass
	var snap *emu.Snapshot
	fork := func(second Fault) func() Outcome {
		return func() Outcome {
			cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
			if spec := SpecOf(second.Model); spec != nil {
				spec.Hooks(second, &cfg)
			}
			m2 := snap.Resume(cfg)
			res2, err2 := m2.Run()
			o := classify(res2, err2, s.good)
			m2.Release()
			return o
		}
	}
	for _, i := range g.idx {
		second := sel[i].Second
		var o Outcome
		if so, ok := pr.solo[second]; refEqual && ok {
			// The first fault's effects died out before the horizon:
			// this machine IS the reference machine, so the pair runs
			// exactly like the second fault alone.
			o = so
			pr.refEquiv.Add(1)
		} else {
			if snap == nil {
				cl = pr.classFor(g.end, digest)
				snap = m.Snapshot()
				snap.SeedDecodeCache(s.codeCache)
				snap.SeedProgram(s.prog)
			}
			o = pr.secondOutcome(cl, second, fork(second))
		}
		outcomes[i] = o
		tally[o]++
		tick()
	}
	// No-op when a snapshot froze m; recycles the buffers otherwise
	// (every pair inherited its second fault's solo outcome).
	m.Release()
}

// ExecutePairShardPruned is ExecutePairShard with the state-hash
// equivalence pruner spliced into the snapshot tree. Results are
// bit-identical to ExecutePairShard (and SimulatePair / the cold
// path): inheritance only substitutes outcomes of provably identical
// continuations. Only the cost and the PruneStats change.
func (s *Session) ExecutePairShardPruned(pairs []FaultPair, pr *PairPruner, shardIndex, shardCount, workers int, progress func(done, total int)) ([]PairInjection, Tally) {
	return s.executePairShard(pairs, pr, shardIndex, shardCount, workers, progress)
}
