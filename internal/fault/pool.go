// Execution substrate: every campaign stage (the order-1 fault sweep,
// the order-2/3 snapshot trees) runs its independent work units
// through a Pool. The default pool spawns a private goroutine set per
// call — the engine's historical shape — while a session with an
// injected pool (Session.SetPool) shares one process-wide worker
// budget with every other campaign running beside it, the corpus
// scheduler's work-stealing substrate (see internal/campaign).
//
// Work is claimed in dynamically sized chunks from an atomic cursor
// (guided self-scheduling): chunks start large, amortizing claim
// overhead, and shrink as the queue drains, so one expensive chunk at
// the tail cannot straggle a whole stage. Results always land at
// fixed, cursor-independent positions, so chunking — like worker
// count — never changes a report bit.
package fault

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes batches of independent work units. Execute invokes run
// on disjoint index ranges [lo, hi) covering [0, n), possibly
// concurrently from multiple goroutines, and returns only after every
// unit has run. run must be safe for concurrent invocation on disjoint
// ranges.
type Pool interface {
	Execute(n int, run func(lo, hi int))
}

// maxChunk bounds a single claim so a worker never hoards a large
// prefix of the queue: a stage is always split finely enough for late
// joiners (or thieves from other cells) to help with the tail.
const maxChunk = 64

// chunkSpan is the dynamic chunk-size policy: an equal share of the
// remaining work per worker round (remaining/(4·workers)), clamped to
// [1, maxChunk]. Early chunks are large (claim overhead amortized),
// tail chunks approach one unit (no straggler).
func chunkSpan(remaining, workers int) int {
	if workers < 1 {
		workers = 1
	}
	span := remaining / (4 * workers)
	if span < 1 {
		return 1
	}
	if span > maxChunk {
		return maxChunk
	}
	return span
}

// ChunkCursor hands out dynamically sized, disjoint index ranges of
// [0, n) to concurrent claimants — the lock-free work queue behind
// both the default pool and the corpus scheduler's per-cell deques.
// The zero value is a drained cursor.
type ChunkCursor struct {
	next    atomic.Int64
	n       int
	workers int
}

// NewChunkCursor builds a cursor over n units, sizing chunks for the
// given worker count (values < 1 are treated as 1).
func NewChunkCursor(n, workers int) *ChunkCursor {
	if workers < 1 {
		workers = 1
	}
	return &ChunkCursor{n: n, workers: workers}
}

// Grab claims the next chunk. It returns ok == false once the cursor
// is drained; claimed ranges are disjoint and cover [0, n) exactly.
func (c *ChunkCursor) Grab() (lo, hi int, ok bool) {
	for {
		cur := c.next.Load()
		if int(cur) >= c.n {
			return 0, 0, false
		}
		span := chunkSpan(c.n-int(cur), c.workers)
		if c.next.CompareAndSwap(cur, cur+int64(span)) {
			lo = int(cur)
			hi = lo + span
			if hi > c.n {
				hi = c.n
			}
			return lo, hi, true
		}
	}
}

// Remaining reports how many units have not been claimed yet. Advisory
// only — concurrent Grab calls may drain it at any moment.
func (c *ChunkCursor) Remaining() int {
	r := c.n - int(c.next.Load())
	if r < 0 {
		return 0
	}
	return r
}

// goPool is the default execution substrate: a private worker set
// spawned per Execute call, claiming chunks from a shared cursor. It
// reproduces the engine's historical scheduling exactly (workers ×
// atomic cursor), with chunked claiming in place of per-item claiming.
type goPool struct {
	workers int
}

// Execute runs the batch on min(workers, n) goroutines.
func (p goPool) Execute(n int, run func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		run(0, n)
		return
	}
	cur := NewChunkCursor(n, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := cur.Grab()
				if !ok {
					return
				}
				run(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// SetPool injects a shared execution pool: every subsequent
// ExecuteShard/ExecutePairShard/ExecuteTripleShard call runs its work
// units on it instead of spawning a private goroutine set, so many
// sessions can share one process-wide worker budget. The per-call
// workers arguments then only size chunks; the pool owns concurrency.
// Results are bit-identical either way. Call before executing, not
// concurrently with it.
func (s *Session) SetPool(p Pool) { s.sched = p }

// executePool resolves the substrate one stage runs on: the injected
// shared pool when one is set, a private per-call goroutine set
// otherwise.
func (s *Session) executePool(workers int) Pool {
	if s.sched != nil {
		return s.sched
	}
	return goPool{workers: s.workerCount(workers)}
}
