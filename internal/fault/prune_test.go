package fault

import (
	"reflect"
	"testing"
)

// TestPrunerBitIdentical: the static order-1 pruner classifies every
// fault exactly like plain simulation, across model combinations, and
// its accounting covers the whole sweep.
func TestPrunerBitIdentical(t *testing.T) {
	for _, models := range [][]Model{
		{ModelSkip}, {ModelBitFlip}, {ModelSkip, ModelRegFlip, ModelMultiSkip, ModelDataFlip},
	} {
		s, err := NewSession(Campaign{
			Binary: buildMini(t), Good: goodPin, Bad: badPin, Models: models,
		})
		if err != nil {
			t.Fatal(err)
		}
		plain, plainTally := s.ExecuteShard(0, 1, 0, nil)
		pr := s.NewPruner()
		pruned, prunedTally := s.ExecuteShardSim(0, 1, 0, pr.Simulate, nil)
		if !reflect.DeepEqual(plain, pruned) {
			t.Fatalf("%v: pruned order-1 sweep differs from plain", models)
		}
		if plainTally != prunedTally {
			t.Fatalf("%v: tallies differ: %v vs %v", models, plainTally, prunedTally)
		}
		if st := pr.Stats(); st.Total() != len(plain) {
			t.Fatalf("%v: prune stats cover %d of %d faults", models, st.Total(), len(plain))
		}
	}
}

// TestPrunerStaticBudget: with an injection step budget shorter than
// the trace, faults striking at or past the budget are classified as
// crashes without simulation — and identically to simulating them.
func TestPrunerStaticBudget(t *testing.T) {
	mk := func(limit uint64) *Session {
		s, err := NewSession(Campaign{
			Binary: buildMini(t), Good: goodPin, Bad: badPin,
			Models: []Model{ModelSkip}, InjectionStepLimit: limit,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	probe := mk(0)
	limit := uint64(probe.NumFaults()/2 + 1)
	s, ref := mk(limit), mk(limit)
	plain, _ := ref.ExecuteShard(0, 1, 0, nil)
	pr := s.NewPruner()
	pruned, _ := s.ExecuteShardSim(0, 1, 0, pr.Simulate, nil)
	if !reflect.DeepEqual(plain, pruned) {
		t.Fatal("budget-gated sweep differs from plain simulation")
	}
	st := pr.Stats()
	if st.StaticBudget == 0 {
		t.Fatal("no fault hit the static budget gate despite a short budget")
	}
	for _, inj := range pruned {
		if uint64(inj.Fault.TraceIndex) >= limit && inj.Outcome != OutcomeCrash {
			t.Fatalf("fault %v past the budget classified %v, want crash", inj.Fault, inj.Outcome)
		}
	}
}

// TestPrunerStaticDecode: bit-flip sweeps route undecodable encodings
// through the lifted pre-screen, and the pruner counts them.
func TestPrunerStaticDecode(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin, Models: []Model{ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := s.NewPruner()
	s.ExecuteShardSim(0, 1, 0, pr.Simulate, nil)
	if pr.Stats().StaticDecode == 0 {
		t.Fatal("bit-flip sweep produced no decode pre-screen classifications")
	}
}

// TestPrunerRecordBitIdentical: the recording pruner path produces the
// same evidence records as SimulateRecord for every fault.
func TestPrunerRecordBitIdentical(t *testing.T) {
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin,
		Models: []Model{ModelSkip, ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := s.NewPruner()
	for _, f := range s.Faults() {
		plain := s.SimulateRecord(f)
		pruned := pr.SimulateRecord(f)
		if !reflect.DeepEqual(plain, pruned) {
			t.Fatalf("fault %v: pruned record differs from plain", f)
		}
	}
	if st := pr.Stats(); st.Total() != s.NumFaults() {
		t.Fatalf("prune stats cover %d of %d faults", st.Total(), s.NumFaults())
	}
}

// TestExecutePairShardPrunedBitIdentical: the equivalence-pruned pair
// sweep is bit-identical to the exhaustive snapshot tree across model
// combinations, worker counts, and shardings — and the pruner's
// accounting covers every pair.
func TestExecutePairShardPrunedBitIdentical(t *testing.T) {
	for _, models := range [][]Model{
		{ModelSkip}, {ModelBitFlip}, {ModelSkip, ModelRegFlip}, {ModelMultiSkip, ModelDataFlip},
	} {
		s, solo, pairs := pairSession(t, models...)
		plain, plainTally := s.ExecutePairShard(pairs, 0, 1, 0, nil)

		pr := s.NewPairPruner(solo)
		pruned, prunedTally := s.ExecutePairShardPruned(pairs, pr, 0, 1, 1, nil)
		if !reflect.DeepEqual(plain, pruned) {
			t.Fatalf("%v: pruned pair sweep differs from exhaustive", models)
		}
		if plainTally != prunedTally {
			t.Fatalf("%v: tallies differ: %v vs %v", models, plainTally, prunedTally)
		}
		if st := pr.Stats(); st.Total() != len(pairs) {
			t.Fatalf("%v: prune stats cover %d of %d pairs", models, st.Total(), len(pairs))
		}

		// Worker invariance on a fresh pruner (classes are discovered in
		// a different order under contention; outcomes must not care).
		pr8 := s.NewPairPruner(solo)
		par, parTally := s.ExecutePairShardPruned(pairs, pr8, 0, 1, 8, nil)
		if !reflect.DeepEqual(plain, par) {
			t.Fatalf("%v: 8-worker pruned sweep differs", models)
		}
		if plainTally != parTally {
			t.Fatalf("%v: 8-worker tally differs", models)
		}
		if st := pr8.Stats(); st.Total() != len(pairs) {
			t.Fatalf("%v: 8-worker prune stats cover %d of %d pairs", models, st.Total(), len(pairs))
		}

		// Shard invariance: shards share one pruner (as one campaign
		// execution does) and recombine to the unsharded run.
		const n = 3
		prs := s.NewPairPruner(solo)
		var shards [n][]PairInjection
		for i := 0; i < n; i++ {
			shards[i], _ = s.ExecutePairShardPruned(pairs, prs, i, n, 2, nil)
		}
		var merged []PairInjection
		cursor := [n]int{}
		for j := 0; j < len(plain); j++ {
			w := j % n
			merged = append(merged, shards[w][cursor[w]])
			cursor[w]++
		}
		if !reflect.DeepEqual(merged, plain) {
			t.Fatalf("%v: recombined pruned shards differ from the unsharded run", models)
		}
	}
}

// TestPairPrunerInheritance: the pruned sweep actually inherits — on
// the mini pincheck some skip pairs re-converge to the reference state
// (idempotent or dead skips), so the sweep must report reference- or
// class-equivalence savings, not classify everything by simulation.
func TestPairPrunerInheritance(t *testing.T) {
	s, solo, pairs := pairSession(t, ModelSkip, ModelBitFlip)
	pr := s.NewPairPruner(solo)
	s.ExecutePairShardPruned(pairs, pr, 0, 1, 0, nil)
	st := pr.Stats()
	if st.RefEquiv+st.ClassEquiv == 0 {
		t.Fatalf("no pair inherited an outcome (stats %+v)", st)
	}
	if st.Simulated >= len(pairs) {
		t.Fatalf("pruner simulated all %d pairs (stats %+v)", len(pairs), st)
	}
}
