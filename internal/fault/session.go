package fault

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/trace"
)

// Checkpoint policy: the reference run is snapshotted every
// checkpointInterval steps so injections replay at most one interval of
// prefix instead of the whole trace. When a long run would exceed
// maxCheckpoints, every other checkpoint is dropped and the interval
// doubles, bounding memory at O(maxCheckpoints) page tables.
const (
	checkpointInterval = 64
	maxCheckpoints     = 256
)

// Session is the reusable execution state of a fault campaign against
// one binary: the memoized golden (fault-free) runs and their oracles,
// a chain of copy-on-write machine snapshots along the reference trace,
// the warm decode cache, and the deterministically enumerated fault
// list.
//
// Building the session performs all per-binary work exactly once; each
// of the (often tens of thousands of) injections then forks the nearest
// snapshot instead of re-initializing memory and registers and
// re-executing the whole prefix from _start. Sessions are safe for
// concurrent Simulate/ExecuteShard calls once constructed.
type Session struct {
	c      Campaign
	good   Observable
	bad    Observable
	trace  *trace.Trace
	faults []Fault
	ckpts  []*emu.Snapshot // ascending by step; ckpts[0] is the entry state

	// codeCache is the reference run's warm decoded-code cache, also
	// seeded into mid-run snapshots the order-2 snapshot tree takes
	// (valid only while the first fault left code unmutated).
	codeCache *emu.CodeCache

	// prog is the reference run's predecoded micro-op program (built
	// once from codeCache), seeded into every snapshot alongside the
	// decode cache so resumed machines dispatch micro-op blocks
	// outside their fault windows.
	prog *emu.Program

	// ladder holds reference-trajectory snapshots for prefix replay:
	// the fixed-interval checkpoints plus the rungs rungFor bisects
	// into oversized gaps, reused campaign-wide.
	ladder *ladder

	// refPages is the reference run's code-page footprint: each fetched
	// page mapped to the step count at its first fetch. SimulateRecord
	// slices it at an injection's snapshot step to account for the
	// golden prefix the forked run inherits.
	refPages map[uint64]uint64

	// probes caches the fetchable instruction bytes at each traced
	// address, for the bit-flip decode pre-screen (see Simulate). Nil
	// when the pre-screen is disabled (self-modifying reference run).
	probes map[uint64]probe

	// inert is the lazily built StaticInert classification state (see
	// inert.go); its instruction map is only populated when the
	// reference run left code unmutated.
	inert inertState

	// sched, when set via SetPool, is the shared execution pool every
	// shard/pair/triple stage runs on instead of a private per-call
	// goroutine set — the seam the corpus work-stealing scheduler
	// injects through.
	sched Pool
}

// probe is the byte window the emulator would fetch at an address.
type probe struct {
	buf [decode.MaxInstLen]byte
	n   int
}

// NewSession captures the oracles and reference trace, snapshots the
// execution at regular intervals, and enumerates every fault of the
// campaign. It fails like Run does: ErrBadRun when a golden run
// crashes, ErrOracle when the two inputs are indistinguishable.
func NewSession(c Campaign) (*Session, error) {
	if c.StepLimit == 0 {
		c.StepLimit = emu.DefaultStepLimit
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Models) == 0 {
		c.Models = []Model{ModelSkip, ModelBitFlip}
	}

	// Pristine entry-state snapshot: sections loaded, stack mapped, RIP
	// at entry. Both golden runs and checkpoint 0 fork from it.
	base := emu.New(c.Binary, emu.Config{Stdin: c.Bad, StepLimit: c.StepLimit}).Snapshot()

	// Resume only overrides stdin when non-nil, and the snapshot carries
	// the bad input — so a nil good input must be pinned to empty here
	// or the good run would silently consume the bad bytes.
	goodIn := c.Good
	if goodIn == nil {
		goodIn = []byte{}
	}
	gm := base.Resume(emu.Config{Stdin: goodIn, StepLimit: c.StepLimit, RecordTrace: true, SingleStep: c.SingleStep})
	goodRes, goodErr := gm.Run()
	if goodErr != nil {
		return nil, fmt.Errorf("%w: good input: %v", ErrBadRun, goodErr)
	}

	s := &Session{c: c, ckpts: []*emu.Snapshot{base}}
	rm := base.Resume(emu.Config{StepLimit: c.StepLimit, RecordTrace: true, RecordPages: true, SingleStep: c.SingleStep})
	badRes, badErr := s.runReference(rm)
	if badErr != nil {
		return nil, fmt.Errorf("%w: bad input: %v", ErrBadRun, badErr)
	}

	s.trace = &trace.Trace{Entries: rm.Trace, Result: badRes}
	s.refPages = rm.PageLog()
	s.good = observe(goodRes)
	s.bad = observe(badRes)
	if s.good == s.bad {
		return nil, ErrOracle
	}

	// Donate the reference run's decode work — and its micro-op
	// translation — to every snapshot whose code image still matches,
	// so injections skip re-decoding and re-translating.
	cache, gen := rm.DecodeCache()
	cc := emu.BuildCodeCache(cache, gen)
	s.codeCache = cc
	s.prog = emu.TranslateProgram(cc)
	for _, cp := range s.ckpts {
		cp.SeedDecodeCache(cc)
		cp.SeedProgram(s.prog)
	}
	s.ladder = newLadder(s.ckpts)

	if s.c.InjectionStepLimit == 0 {
		ref := badRes.Steps
		if goodRes.Steps > ref {
			ref = goodRes.Steps
		}
		s.c.InjectionStepLimit = 8*ref + 4096
	}

	// Models whose enumeration inspects operands (register/data faults)
	// get the decoded instruction at each traced address, recycled from
	// the reference run's decode cache when the code never mutated.
	var insts map[uint64]*isa.Inst
	for _, model := range s.c.Models {
		if spec := SpecOf(model); spec != nil && spec.NeedsInsts() {
			insts = buildInstMap(base, s.trace, cache, gen)
			break
		}
	}
	faults, err := enumerate(s.c, s.trace, insts)
	if err != nil {
		return nil, err
	}
	s.faults = faults
	if s.c.MaxFaults > 0 && len(s.faults) > s.c.MaxFaults {
		s.faults = s.faults[:s.c.MaxFaults]
	}

	// StaticInert screens decode the skip windows against load-time
	// bytes, so they share the generation-zero precondition with the
	// decode pre-screen below. The instructions are value-copied out of
	// the machine's cache so later resumed machines cannot alias it.
	if gen == 0 {
		im := make(map[uint64]isa.Inst, len(cache))
		for a, in := range cache {
			im[a] = *in
		}
		s.inert.insts = im
	}

	// Bit-flip decode pre-screen: when the reference run never mutated
	// code (generation still zero), the bytes fetched at any traced
	// address are the load-time bytes, so whether a given flip still
	// decodes can be answered once per (address, bit) with a single
	// decode instead of a full simulation. Only valid while code is
	// pristine; a self-modifying reference run disables it.
	if gen == 0 {
		needsProbe := false
		for _, f := range s.faults {
			if f.Model == ModelBitFlip {
				needsProbe = true
				break
			}
		}
		if needsProbe {
			pm := base.Resume(emu.Config{})
			s.probes = make(map[uint64]probe, len(s.trace.Entries))
			for _, e := range s.trace.Entries {
				if _, ok := s.probes[e.Addr]; ok {
					continue
				}
				var p probe
				n, err := pm.Mem.Fetch(e.Addr, p.buf[:])
				if err != nil {
					s.probes = nil // be conservative: simulate everything
					break
				}
				p.n = n
				s.probes[e.Addr] = p
			}
		}
	}
	return s, nil
}

// buildInstMap collects the decoded instruction behind every unique
// traced address, for fault models that enumerate over operands. While
// the reference run never mutated code (gen 0), its decode cache
// already holds every instruction; anything missing (or any campaign
// against self-modifying code) is re-fetched from the entry snapshot
// and decoded once. Addresses that no longer decode are left out — the
// spec sees a nil Inst and skips the site.
func buildInstMap(base *emu.Snapshot, tr *trace.Trace, cache map[uint64]*isa.Inst, gen uint64) map[uint64]*isa.Inst {
	insts := make(map[uint64]*isa.Inst)
	var pm *emu.Machine
	for _, e := range tr.Entries {
		if _, done := insts[e.Addr]; done {
			continue
		}
		if gen == 0 {
			if in, ok := cache[e.Addr]; ok {
				insts[e.Addr] = in
				continue
			}
		}
		if pm == nil {
			pm = base.Resume(emu.Config{})
		}
		var buf [decode.MaxInstLen]byte
		n, err := pm.Mem.Fetch(e.Addr, buf[:])
		if err != nil {
			continue
		}
		in, err := decode.Decode(buf[:n], e.Addr)
		if err != nil {
			continue
		}
		insts[e.Addr] = &in
	}
	return insts
}

// runReference executes the bad-input reference run, snapshotting the
// machine every checkpointInterval steps (with geometric thinning once
// maxCheckpoints is reached).
func (s *Session) runReference(m *emu.Machine) (emu.Result, error) {
	interval := uint64(checkpointInterval)
	next := interval
	var err error
	for !m.Exited {
		if m.Steps >= m.StepLimit {
			err = emu.ErrStepLimit
			break
		}
		if m.Steps == next {
			s.ckpts = append(s.ckpts, m.Snapshot())
			if len(s.ckpts) > maxCheckpoints {
				kept := s.ckpts[:0]
				for i := 0; i < len(s.ckpts); i += 2 {
					kept = append(kept, s.ckpts[i])
				}
				s.ckpts = kept
				interval *= 2
			}
			next = m.Steps + interval
		}
		if err = m.Step(); err != nil {
			break
		}
	}
	return emu.Result{
		Exited:   m.Exited,
		ExitCode: m.ExitCode,
		Steps:    m.Steps,
		Stdout:   m.Stdout,
		Stderr:   m.Stderr,
	}, err
}

// Faults returns the enumerated fault list in campaign order. Callers
// must not mutate it.
func (s *Session) Faults() []Fault { return s.faults }

// NumFaults returns the campaign's total injection count.
func (s *Session) NumFaults() int { return len(s.faults) }

// Oracles returns the observable behaviour of the good and bad golden
// runs.
func (s *Session) Oracles() (good, bad Observable) { return s.good, s.bad }

// Report assembles a campaign report around a set of injections (as
// produced by ExecuteShard, or merged from several shards).
func (s *Session) Report(injections []Injection) *Report {
	return &Report{
		Trace:      s.trace,
		GoodOracle: s.good,
		BadOracle:  s.bad,
		Injections: injections,
	}
}

// checkpointFor returns the latest snapshot taken at or before the
// given trace index.
func (s *Session) checkpointFor(traceIndex uint64) *emu.Snapshot {
	lo, hi := 0, len(s.ckpts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.ckpts[mid].Steps() <= traceIndex {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return s.ckpts[lo]
}

// injectionConfig builds the emulator hooks for one fault by asking
// its registered spec. Specs key any step-indexed behaviour off the
// machine's absolute step counter, so the hooks behave identically
// whether the run starts from _start or resumes from a mid-trace
// snapshot (the contract TestSnapshotPathMatchesColdPath enforces).
func (s *Session) injectionConfig(f Fault) emu.Config {
	cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
	if spec := SpecOf(f.Model); spec != nil {
		spec.Hooks(f, &cfg)
	}
	return cfg
}

// Simulate runs one injection and classifies its outcome. Safe for
// concurrent use.
//
// Bit flips that corrupt the instruction encoding beyond decodability
// are classified as crashes without simulation: the reference run
// proves execution reaches the fault site, the flipped fetch then
// fails to decode, and a decode failure is a crash regardless of any
// output produced earlier (and a too-small InjectionStepLimit that
// would stop the run before the fault site is also a crash). Everything
// else resumes the nearest copy-on-write snapshot.
func (s *Session) Simulate(f Fault) Outcome {
	if s.decodePreScreen(f) {
		return OutcomeCrash
	}
	return s.simulateDynamic(f)
}

// decodePreScreen reports whether the bit flip f corrupts its
// instruction encoding beyond decodability — the static classification
// Simulate's doc comment describes. Only bit-flip faults with a valid
// probe window answer true; everything else (including campaigns whose
// reference run self-modified code, where probes is nil) must simulate.
func (s *Session) decodePreScreen(f Fault) bool {
	if f.Model != ModelBitFlip || s.probes == nil {
		return false
	}
	p, ok := s.probes[f.Addr]
	if !ok || f.Bit/8 >= p.n {
		return false
	}
	p.buf[f.Bit/8] ^= 1 << (f.Bit % 8)
	_, err := decode.Decode(p.buf[:p.n], f.Addr)
	return err != nil
}

// simulateDynamic is the simulation core behind Simulate: resume the
// nearest copy-on-write snapshot with the fault's hooks and classify
// the run. Callers (Simulate, Pruner) apply their static screens first.
func (s *Session) simulateDynamic(f Fault) Outcome {
	m := s.rungFor(uint64(f.TraceIndex)).Resume(s.injectionConfig(f))
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// InjectionLimit returns the per-injection step budget the session runs
// faulted machines under (the campaign's InjectionStepLimit after the
// automatic default was resolved). Campaign caches must compare it
// before reusing an outcome: the same run under a smaller budget can
// flip from exit to step-limit crash.
func (s *Session) InjectionLimit() uint64 { return s.c.InjectionStepLimit }

// SimRecord is the full account of one injection run — everything a
// cross-binary campaign cache needs to decide later whether the
// outcome is still valid:
//
//   - Pages is the run's code footprint: every page the machine fetched
//     instruction bytes from, including the golden prefix the forked
//     snapshot inherited (the prefix determines the fork state). If
//     none of these pages' bytes changed, the run replays identically.
//   - Steps and LimitHit qualify the outcome against a different
//     injection step budget: a finished run stays valid under any
//     budget >= Steps, a budget-cut run only under a budget that cuts
//     at least as early.
type SimRecord struct {
	Outcome  Outcome
	Steps    uint64   // steps completed when the run ended (0: decode pre-screen)
	LimitHit bool     // run was cut off by the injection step limit
	Pages    []uint64 // sorted code pages fetched by prefix + faulted run
}

// SimulateRecord runs one injection like Simulate and additionally
// records the evidence the outcome rests on. Safe for concurrent use.
func (s *Session) SimulateRecord(f Fault) SimRecord {
	if s.decodePreScreen(f) {
		return s.preScreenRecord(f)
	}
	return s.simulateRecordDynamic(f)
}

// preScreenRecord builds the evidence record behind a decode
// pre-screened crash. The crash rests on the reference run reaching
// the site (the prefix) and on the flipped instruction's own bytes.
// Only valid after decodePreScreen(f) answered true.
func (s *Session) preScreenRecord(f Fault) SimRecord {
	p := s.probes[f.Addr]
	pages := s.prefixPages(uint64(f.TraceIndex) + 1)
	for a := f.Addr &^ (emu.PageSize - 1); a < f.Addr+uint64(p.n); a += emu.PageSize {
		pages[a] = struct{}{}
	}
	if p.n < decode.MaxInstLen {
		// The probe window was truncated: the crash also rests on the
		// page that cut it short staying unfetchable, so it must
		// invalidate the record if it changes (mirrors the emulator's
		// decode-failure page logging).
		pages[(f.Addr+uint64(p.n))&^uint64(emu.PageSize-1)] = struct{}{}
	}
	return SimRecord{Outcome: OutcomeCrash, Pages: sortedPages(pages)}
}

// simulateRecordDynamic is the evidence-recording simulation core
// behind SimulateRecord, minus the decode pre-screen.
func (s *Session) simulateRecordDynamic(f Fault) SimRecord {
	ck := s.rungFor(uint64(f.TraceIndex))
	cfg := s.injectionConfig(f)
	cfg.RecordPages = true
	m := ck.Resume(cfg)
	res, err := m.Run()
	// The prefix bound must be deterministic, and ladder rung positions
	// are not (they depend on which injections ran first): account the
	// prefix up to the fault step itself, a superset of any rung's
	// actual prefix, so the recorded evidence is worker-schedule
	// independent.
	bound := uint64(f.TraceIndex)
	if lim := s.c.InjectionStepLimit; lim > 0 && bound > lim-1 {
		bound = lim - 1
	}
	pages := s.prefixPages(bound + 1)
	for pa := range m.PageLog() {
		pages[pa] = struct{}{}
	}
	rec := SimRecord{
		Outcome:  classify(res, err, s.good),
		Steps:    res.Steps,
		LimitHit: errors.Is(err, emu.ErrStepLimit),
		Pages:    sortedPages(pages),
	}
	m.Release()
	return rec
}

// prefixPages collects the reference run's footprint pages first
// fetched before the given step — the pages whose bytes determined the
// machine state a snapshot taken at that step carries.
func (s *Session) prefixPages(step uint64) map[uint64]struct{} {
	out := make(map[uint64]struct{}, len(s.refPages))
	for pa, first := range s.refPages {
		if first < step {
			out[pa] = struct{}{}
		}
	}
	return out
}

// sortedPages flattens a page set deterministically.
func sortedPages(set map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(set))
	for pa := range set {
		out = append(out, pa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SimulateCold runs one injection from a freshly initialized machine,
// replaying the whole prefix — the reference semantics the snapshot
// path must match bit for bit. Tests cross-validate the two paths; the
// engine never uses it.
func (s *Session) SimulateCold(f Fault) Outcome {
	cfg := s.injectionConfig(f)
	cfg.Stdin = s.c.Bad
	m := emu.New(s.c.Binary, cfg)
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// Tally counts injection outcomes, indexed by Outcome.
type Tally [4]int

// Count returns the number of injections with the given outcome.
func (t Tally) Count(o Outcome) int { return t[o] }

// Total returns the number of injections tallied.
func (t Tally) Total() int {
	n := 0
	for _, v := range t {
		n += v
	}
	return n
}

// Add accumulates another tally.
func (t *Tally) Add(u Tally) {
	for i, v := range u {
		t[i] += v
	}
}

// ExecuteShard simulates the faults of shard shardIndex (of shardCount
// round-robin shards: fault j belongs to shard j mod shardCount) on a
// worker pool; results land at fixed slice positions, so the returned
// injections are bit-identical regardless of worker count.
//
// progress, when non-nil, is invoked after every completed injection
// with the shard-local completion count; it may be called from multiple
// goroutines concurrently.
func (s *Session) ExecuteShard(shardIndex, shardCount, workers int, progress func(done, total int)) ([]Injection, Tally) {
	return s.ExecuteShardSim(shardIndex, shardCount, workers, s.Simulate, progress)
}

// ExecuteShardSim is ExecuteShard with a caller-supplied simulation
// function — the seam the incremental campaign executor uses to splice
// cached outcomes in (answering from a memo, falling back to
// SimulateRecord on a miss) while keeping the engine's scheduling,
// sharding, and bit-identity guarantees. sim must be safe for
// concurrent use and deterministic, like Simulate.
func (s *Session) ExecuteShardSim(shardIndex, shardCount, workers int, sim func(Fault) Outcome, progress func(done, total int)) ([]Injection, Tally) {
	sel, outcomes, tally := runShard(s.faults, shardIndex, shardCount, s.executePool(workers), sim, progress)
	out := make([]Injection, len(sel))
	for i, f := range sel {
		out[i] = Injection{Fault: f, Outcome: outcomes[i]}
	}
	return out, tally
}

// workerCount resolves a caller-supplied worker count against the
// campaign default.
func (s *Session) workerCount(workers int) int {
	if workers <= 0 {
		return s.c.Workers
	}
	return workers
}

// ShardSelect is the engine's one round-robin shard decomposition:
// item j belongs to shard j mod count. Every consumer — the execution
// core, the pair sweep, and the campaign store's outcome zips — goes
// through it, so the decomposition cannot drift between the execute
// and cache paths (stored outcome vectors are zipped back against this
// selection). Panics on an out-of-range index like a slice-bounds
// misuse; count <= 1 selects everything.
func ShardSelect[T any](items []T, index, count int) []T {
	if count <= 1 {
		index, count = 0, 1
	}
	if index < 0 || index >= count {
		// Out-of-range shards would silently drop faults; fail loudly.
		panic(fmt.Sprintf("fault: shard index %d outside [0,%d)", index, count))
	}
	if count == 1 {
		return items
	}
	var sel []T
	for j := index; j < len(items); j += count {
		sel = append(sel, items[j])
	}
	return sel
}

// runShard is the engine's shared execution core: it selects the
// round-robin shard of items and simulates it in dynamically sized
// chunks claimed from the pool (a private goroutine set by default,
// the corpus work-stealing scheduler when injected). Outcomes land at
// fixed positions and the tally is order-insensitive, so results are
// bit-identical regardless of worker count, chunking, or stealing.
// Both the order-1 fault sweep and the order-2 pair sweep run on it.
func runShard[T any](items []T, shardIndex, shardCount int, pool Pool, sim func(T) Outcome, progress func(done, total int)) ([]T, []Outcome, Tally) {
	sel := ShardSelect(items, shardIndex, shardCount)
	outcomes := make([]Outcome, len(sel))
	if len(sel) == 0 {
		return sel, outcomes, Tally{}
	}

	var done atomic.Int64
	var mu sync.Mutex
	var total Tally
	pool.Execute(len(sel), func(lo, hi int) {
		var local Tally
		for i := lo; i < hi; i++ {
			o := sim(sel[i])
			outcomes[i] = o
			local[o]++
			if progress != nil {
				progress(int(done.Add(1)), len(sel))
			}
		}
		mu.Lock()
		total.Add(local)
		mu.Unlock()
	})
	return sel, outcomes, total
}
