// StaticInert: the third static pruning tier, backed by the static
// package's dataflow engine. A skip-model fault whose window provably
// cannot change the run's observable behaviour is answered with the
// reference run's own outcome, with no simulation at all.
//
// Soundness argument (enforced end to end by the campaign package's
// pruned-vs-exhaustive differential harness):
//
//   - The window must be trace-contiguous: the reference run fell
//     through every skipped instruction, so the skipped machine visits
//     the same addresses (a skip advances RIP by the encoding length,
//     and skips still count as steps, so all step-keyed hooks stay
//     aligned).
//   - Every instruction in the window is either transparent (writes no
//     register, flag or memory component — skipping it is a no-op given
//     fall-through) or side-effect-free with all written components
//     proven dead at the continuation address by the liveness analysis
//     (the continuation never reads them before overwriting them, so it
//     computes the same stores, syscalls, branches and exit).
//   - Either way the faulted run's observables equal the un-faulted
//     run's under the same injection step budget, so the outcome is the
//     reference outcome — computed once per session under exactly that
//     budget, never assumed.
//
// The dead-output tier is only sound for solo faults: a second fault
// could steer execution onto a path the liveness fixpoint never
// considered live, resurrecting a "dead" component. Multi-fault fast
// paths therefore require a fully transparent window (nothing written),
// where the machine is bit-identical to the reference trajectory and
// the remaining faults compose exactly as if injected alone.
//
// All tiers require the reference run to have left code unmutated
// (generation zero): the decoded window instructions and the whole-
// binary liveness facts describe load-time bytes.
package fault

import (
	"sync"

	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/static"
)

// inertState is the Session's lazily materialized static-classification
// state. The reference outcome and the whole-binary analysis are only
// paid for when a campaign actually prunes with them.
type inertState struct {
	// insts is a private copy of the reference run's decoded
	// instructions by address, valid only at code generation zero (nil
	// otherwise, which disables every screen).
	insts map[uint64]isa.Inst

	refOnce sync.Once
	ref     Outcome

	anOnce sync.Once
	an     *static.Analysis
}

// skipWindowOf returns the number of consecutive trace steps a
// skip-model fault suppresses, mirroring each spec's EffectEnd.
func skipWindowOf(f Fault) (int, bool) {
	switch f.Model {
	case ModelSkip:
		return 1, true
	case ModelMultiSkip:
		return f.Window, true
	}
	return 0, false
}

// inertWindow inspects a skip-model fault's window over the reference
// trace and reports whether it is eligible for static classification:
// code generation zero, the whole window plus its continuation inside
// the trace, every step trace-contiguous (the reference fell through),
// and every instruction either transparent or side-effect-free. It
// returns the union of components the window writes (zero means fully
// transparent) and the continuation address.
func (s *Session) inertWindow(f Fault) (writes static.LiveSet, cont uint64, ok bool) {
	if s.inert.insts == nil {
		return 0, 0, false
	}
	w, ok := skipWindowOf(f)
	if !ok || w <= 0 {
		return 0, 0, false
	}
	entries := s.trace.Entries
	i := f.TraceIndex
	if i < 0 || i+w >= len(entries) {
		return 0, 0, false
	}
	for k := i; k < i+w; k++ {
		in, known := s.inert.insts[entries[k].Addr]
		if !known {
			return 0, 0, false
		}
		if entries[k+1].Addr != in.Addr+uint64(in.EncLen) {
			return 0, 0, false // the reference did not fall through
		}
		if static.Transparent(in) {
			continue
		}
		wr, eligible := static.SkippableWrites(in)
		if !eligible {
			return 0, 0, false
		}
		writes |= wr
	}
	return writes, entries[i+w].Addr, true
}

// refOutcome classifies the un-faulted reference run under the
// injection step budget (which can differ from the budget the trace
// was recorded under — a smaller budget turns the same run into a
// step-limit crash, so this is computed, never assumed). Memoized per
// session; safe for concurrent use.
func (s *Session) refOutcome() Outcome {
	s.inert.refOnce.Do(func() {
		m := s.ckpts[0].Resume(emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep})
		res, err := m.Run()
		s.inert.ref = classify(res, err, s.good)
		m.Release()
	})
	return s.inert.ref
}

// staticAnalysis lazily builds the whole-binary dataflow analysis the
// dead-output tier needs, once per session. Nil when the binary cannot
// be analyzed (the screen then never fires). Safe for concurrent use.
func (s *Session) staticAnalysis() *static.Analysis {
	s.inert.anOnce.Do(func() {
		if an, err := static.Analyze(s.c.Binary); err == nil {
			s.inert.an = an
		}
	})
	return s.inert.an
}

// inertOutcome answers a solo skip-model fault statically when its
// window is provably inert, per the tiers in the package comment.
func (s *Session) inertOutcome(f Fault) (Outcome, bool) {
	writes, cont, ok := s.inertWindow(f)
	if !ok {
		return 0, false
	}
	if writes != 0 {
		an := s.staticAnalysis()
		if an == nil || !an.OutputsDead(writes, cont) {
			return 0, false
		}
	}
	return s.refOutcome(), true
}

// transparentFirst reports whether a multi-fault group's first fault
// has a fully transparent window: the faulted machine is bit-identical
// to the reference trajectory from the effect horizon on, so the
// group's remaining faults compose exactly as if injected alone.
func (s *Session) transparentFirst(f Fault) bool {
	writes, _, ok := s.inertWindow(f)
	return ok && writes == 0
}
