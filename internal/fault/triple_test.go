package fault

import (
	"reflect"
	"testing"
)

func tripleSession(t *testing.T, models ...Model) (*Session, []Injection, []FaultTriple) {
	t.Helper()
	s, solo, _ := pairSession(t, models...)
	return s, solo, EnumerateTriples(solo, 0)
}

// TestEnumerateTriples: triples draw components from detected/ignored
// solo outcomes, are strictly trace-ordered, deterministic, and
// budget-capped as a prefix.
func TestEnumerateTriples(t *testing.T) {
	_, solo, triples := tripleSession(t, ModelSkip)
	if len(triples) == 0 {
		t.Fatal("no triples enumerated")
	}
	eligible := map[Fault]bool{}
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			eligible[inj.Fault] = true
		}
	}
	for _, tr := range triples {
		if !eligible[tr.First] || !eligible[tr.Second] || !eligible[tr.Third] {
			t.Errorf("triple %v uses a non-eligible component", tr)
		}
		if tr.Second.TraceIndex <= tr.First.TraceIndex || tr.Third.TraceIndex <= tr.Second.TraceIndex {
			t.Errorf("triple %v is not strictly trace-ordered", tr)
		}
	}
	if again := EnumerateTriples(solo, 0); !reflect.DeepEqual(triples, again) {
		t.Error("triple enumeration not deterministic")
	}
	capped := EnumerateTriples(solo, 7)
	if len(capped) != 7 {
		t.Errorf("capped enumeration returned %d triples, want 7", len(capped))
	}
	if !reflect.DeepEqual(capped, triples[:7]) {
		t.Error("capped enumeration is not a prefix of the full list")
	}
}

// TestSimulateTripleMatchesColdPath: the snapshot path must classify
// every triple exactly as a cold replay from _start.
func TestSimulateTripleMatchesColdPath(t *testing.T) {
	for _, models := range [][]Model{
		{ModelSkip}, {ModelSkip, ModelRegFlip},
	} {
		s, _, triples := tripleSession(t, models...)
		if len(triples) > 200 {
			triples = triples[:200] // bound the cross-validation cost
		}
		for _, tr := range triples {
			if warm, cold := s.SimulateTriple(tr), s.SimulateTripleCold(tr); warm != cold {
				t.Errorf("%v %v: snapshot path %v, cold path %v", models, tr, warm, cold)
			}
		}
	}
}

// TestExecuteTripleShardBitIdentical: the pruned order-3 tree matches
// per-triple simulation bit for bit, across worker counts and
// shardings, with and without a registered pair sweep to inherit from.
func TestExecuteTripleShardBitIdentical(t *testing.T) {
	s, solo, triples := tripleSession(t, ModelSkip, ModelBitFlip)
	if len(triples) > 600 {
		triples = triples[:600]
	}
	want := make([]TripleInjection, len(triples))
	var wantTally Tally
	for i, tr := range triples {
		o := s.SimulateTriple(tr)
		want[i] = TripleInjection{Triple: tr, Outcome: o}
		wantTally[o]++
	}

	// Bare pruner: no pair outcomes registered, everything classifies
	// via classes or simulation.
	pr := s.NewPairPruner(solo)
	got, tally := s.ExecuteTripleShard(triples, pr, 0, 1, 1, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("pruned triple sweep differs from per-triple simulation")
	}
	if tally != wantTally {
		t.Fatalf("tallies differ: %v vs %v", tally, wantTally)
	}
	if st := pr.Stats(); st.Total() != len(triples) {
		t.Fatalf("prune stats cover %d of %d triples", st.Total(), len(triples))
	}

	// Pruner with the pair sweep registered (the campaign wiring):
	// reference-equal groups now inherit pair outcomes directly.
	pairs := EnumeratePairs(solo, 0)
	pairInj, _ := s.ExecutePairShard(pairs, 0, 1, 0, nil)
	prp := s.NewPairPruner(solo)
	prp.SetPairOutcomes(pairInj)
	got2, _ := s.ExecuteTripleShard(triples, prp, 0, 1, 8, nil)
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("pair-seeded pruned triple sweep differs from per-triple simulation")
	}

	// Shard invariance with a shared pruner.
	const n = 3
	prs := s.NewPairPruner(solo)
	var shards [n][]TripleInjection
	for i := 0; i < n; i++ {
		shards[i], _ = s.ExecuteTripleShard(triples, prs, i, n, 2, nil)
	}
	var merged []TripleInjection
	cursor := [n]int{}
	for j := 0; j < len(want); j++ {
		w := j % n
		merged = append(merged, shards[w][cursor[w]])
		cursor[w]++
	}
	if !reflect.DeepEqual(merged, want) {
		t.Error("recombined triple shards differ from per-triple simulation")
	}
}
