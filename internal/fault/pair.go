// Order-2 multi-fault campaigns: deterministic enumeration and
// simulation of fault *pairs*. Single-fault-hardened binaries routinely
// fall to a second, coordinated injection (Boespflug et al.) — the
// classic example being a skip of a protected instruction paired with a
// skip of the countermeasure's check. Pair campaigns make that attack
// class simulable while keeping the engine's determinism guarantees:
// the pair list is a pure function of the order-1 sweep, and pair
// results are bit-identical across worker counts and shard
// decompositions.
package fault

import (
	"sync"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/emu"
)

// FaultPair is an ordered pair of faults injected into one run; Second
// always strikes strictly later in the trace than First.
type FaultPair struct {
	First  Fault
	Second Fault
}

// String renders the pair for reports.
func (p FaultPair) String() string {
	return p.First.String() + " + " + p.Second.String()
}

// PairInjection is the result of simulating one fault pair.
type PairInjection struct {
	Pair    FaultPair
	Outcome Outcome
}

// DefaultMaxPairs caps order-2 enumeration when the caller supplies no
// budget. The unpruned pair space is quadratic in the fault list;
// campaigns that want it wider (or narrower) pass their own cap.
const DefaultMaxPairs = 4096

// EnumeratePairs builds the deterministic order-2 work list from a
// completed order-1 sweep, pruned and budget-capped:
//
//   - both components are drawn only from faults whose solo outcome was
//     detected or ignored — a fault that already succeeds alone needs no
//     partner, and a fault that crashes alone leaves no program state
//     for a second fault to steer;
//   - the second fault must strike strictly later in the trace than the
//     first, which both orders the injection physically and halves the
//     symmetric pair space;
//   - enumeration walks candidates in campaign order (first fault outer,
//     second inner) and stops at max pairs (0 means DefaultMaxPairs),
//     so the same solo sweep always yields the same work list.
func EnumeratePairs(solo []Injection, max int) []FaultPair {
	if max <= 0 {
		max = DefaultMaxPairs
	}
	var cand []Fault
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			cand = append(cand, inj.Fault)
		}
	}
	var out []FaultPair
	for i := range cand {
		for j := range cand {
			if cand[j].TraceIndex <= cand[i].TraceIndex {
				continue
			}
			out = append(out, FaultPair{First: cand[i], Second: cand[j]})
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}

// pairConfig composes both faults' emulator hooks onto one run. The
// hooks chain (Config.AddFetchHook/AddStepHook), and each keys off the
// absolute step counter, so the two injections are independent: the
// second fires at its step index even when the first has already sent
// execution down a different path.
func (s *Session) pairConfig(p FaultPair) emu.Config {
	cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
	if spec := SpecOf(p.First.Model); spec != nil {
		spec.Hooks(p.First, &cfg)
	}
	if spec := SpecOf(p.Second.Model); spec != nil {
		spec.Hooks(p.Second, &cfg)
	}
	return cfg
}

// SimulatePair runs one order-2 injection from the copy-on-write
// snapshot nearest the first fault and classifies its outcome. The
// bit-flip decode pre-screen does not apply here: it relies on the
// reference run reaching the fault site, which the other fault of the
// pair may prevent. Safe for concurrent use.
func (s *Session) SimulatePair(p FaultPair) Outcome {
	first := p.First.TraceIndex
	if p.Second.TraceIndex < first {
		first = p.Second.TraceIndex
	}
	m := s.rungFor(uint64(first)).Resume(s.pairConfig(p))
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// SimulatePairCold replays an order-2 injection from a freshly
// initialized machine — the reference semantics the snapshot path must
// match bit for bit. Tests cross-validate the two paths; the engine
// never uses it.
func (s *Session) SimulatePairCold(p FaultPair) Outcome {
	cfg := s.pairConfig(p)
	cfg.Stdin = s.c.Bad
	m := emu.New(s.c.Binary, cfg)
	res, err := m.Run()
	o := classify(res, err, s.good)
	m.Release()
	return o
}

// pairGroup is one node of the first-fault snapshot tree: every
// selected pair sharing one first fault whose second fault strikes at
// or after the first's effect horizon. The group costs one prefix
// resume + one run to the horizon, then one cheap snapshot fork per
// second fault.
type pairGroup struct {
	first Fault
	end   uint64 // snapshot step: the first fault's effect horizon
	idx   []int  // positions in the shard-local pair selection
}

// runPairGroup executes one snapshot-tree node: resume the nearest
// golden checkpoint with the first fault's hooks, run until those hooks
// are inert, snapshot the post-first-fault machine (copy-on-write), and
// fork that snapshot once per second fault. Results are bit-identical
// to SimulatePair (and SimulatePairCold): before the snapshot step no
// second-fault hook could have fired (eligibility requires
// Second.TraceIndex >= end), and after it the first fault's hooks are
// inert by its declared EffectHorizon.
func (s *Session) runPairGroup(g *pairGroup, sel []FaultPair, outcomes []Outcome, tally *Tally, tick func()) {
	m := s.rungFor(uint64(g.first.TraceIndex)).Resume(s.injectionConfig(g.first))
	res, done, err := m.RunUntil(g.end)
	if done {
		// The first-fault run ended (exit, crash, or step limit) before
		// any eligible second fault's step — every pair in the group
		// classifies exactly like the solo first-fault run.
		o := classify(res, err, s.good)
		for _, i := range g.idx {
			outcomes[i] = o
			tally[o]++
			tick()
		}
		m.Release()
		return
	}
	snap := m.Snapshot()
	// Re-donate the golden run's decode cache and micro-op program;
	// the seeds ignore them when the first fault mutated code (bit
	// flips).
	snap.SeedDecodeCache(s.codeCache)
	snap.SeedProgram(s.prog)
	for _, i := range g.idx {
		cfg := emu.Config{StepLimit: s.c.InjectionStepLimit, SingleStep: s.c.SingleStep}
		second := sel[i].Second
		if spec := SpecOf(second.Model); spec != nil {
			spec.Hooks(second, &cfg)
		}
		m2 := snap.Resume(cfg)
		res2, err2 := m2.Run()
		o := classify(res2, err2, s.good)
		outcomes[i] = o
		tally[o]++
		tick()
		m2.Release()
	}
}

// ExecutePairShard simulates the pairs of shard shardIndex (of
// shardCount round-robin shards) on a worker pool. Pairs are grouped
// into a first-fault snapshot tree: each distinct first fault replays
// its prefix once, is snapshotted after its effect horizon, and serves
// every second fault from a copy-on-write fork — O(distinct first
// faults) prefix replays instead of O(pairs). Pairs outside the tree
// (first fault without an EffectHorizon, or a second fault striking
// inside the first's effect window) take the per-pair SimulatePair
// path. Results land at fixed positions and are bit-identical to the
// per-pair (and cold) path regardless of worker count or grouping.
func (s *Session) ExecutePairShard(pairs []FaultPair, shardIndex, shardCount, workers int, progress func(done, total int)) ([]PairInjection, Tally) {
	return s.executePairShard(pairs, nil, shardIndex, shardCount, workers, progress)
}

// executePairShard is the shared snapshot-tree core behind
// ExecutePairShard (pr == nil) and ExecutePairShardPruned (pr != nil).
// The pruner only changes how a group's forks are classified — by
// digest-based inheritance where sound, simulation otherwise — never
// which pairs run or what their outcomes are.
func (s *Session) executePairShard(pairs []FaultPair, pr *PairPruner, shardIndex, shardCount, workers int, progress func(done, total int)) ([]PairInjection, Tally) {
	sel := ShardSelect(pairs, shardIndex, shardCount)
	outcomes := make([]Outcome, len(sel))
	if len(sel) == 0 {
		return make([]PairInjection, 0), Tally{}
	}

	// Partition into snapshot-tree groups (first-seen order) and loose
	// per-pair work.
	groupOf := make(map[Fault]*pairGroup)
	var groups []*pairGroup
	var loose []int
	for i, p := range sel {
		end, ok := effectEnd(p.First)
		if !ok || uint64(p.Second.TraceIndex) < end {
			loose = append(loose, i)
			continue
		}
		g, seen := groupOf[p.First]
		if !seen {
			g = &pairGroup{first: p.First, end: end}
			groupOf[p.First] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}

	// Work units: one per group, one per loose pair; claimed in
	// dynamically sized chunks from the pool like runShard. A group is
	// one unit (its snapshot tree shares one resumed prefix), so chunk
	// boundaries never split a tree.
	units := len(groups) + len(loose)
	var done atomic.Int64
	tick := func() {
		if progress != nil {
			progress(int(done.Add(1)), len(sel))
		}
	}
	var mu sync.Mutex
	var tally Tally
	s.executePool(workers).Execute(units, func(lo, hi int) {
		var local Tally
		for u := lo; u < hi; u++ {
			if u < len(groups) {
				if pr != nil {
					s.runPairGroupPruned(pr, groups[u], sel, outcomes, &local, tick)
				} else {
					s.runPairGroup(groups[u], sel, outcomes, &local, tick)
				}
				continue
			}
			i := loose[u-len(groups)]
			o := s.SimulatePair(sel[i])
			if pr != nil {
				pr.sim.Add(1)
			}
			outcomes[i] = o
			local[o]++
			tick()
		}
		mu.Lock()
		tally.Add(local)
		mu.Unlock()
	})
	out := make([]PairInjection, len(sel))
	for i, p := range sel {
		out[i] = PairInjection{Pair: p, Outcome: outcomes[i]}
	}
	return out, tally
}
