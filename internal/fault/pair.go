// Order-2 multi-fault campaigns: deterministic enumeration and
// simulation of fault *pairs*. Single-fault-hardened binaries routinely
// fall to a second, coordinated injection (Boespflug et al.) — the
// classic example being a skip of a protected instruction paired with a
// skip of the countermeasure's check. Pair campaigns make that attack
// class simulable while keeping the engine's determinism guarantees:
// the pair list is a pure function of the order-1 sweep, and pair
// results are bit-identical across worker counts and shard
// decompositions.
package fault

import "github.com/r2r/reinforce/internal/emu"

// FaultPair is an ordered pair of faults injected into one run; Second
// always strikes strictly later in the trace than First.
type FaultPair struct {
	First  Fault
	Second Fault
}

// String renders the pair for reports.
func (p FaultPair) String() string {
	return p.First.String() + " + " + p.Second.String()
}

// PairInjection is the result of simulating one fault pair.
type PairInjection struct {
	Pair    FaultPair
	Outcome Outcome
}

// DefaultMaxPairs caps order-2 enumeration when the caller supplies no
// budget. The unpruned pair space is quadratic in the fault list;
// campaigns that want it wider (or narrower) pass their own cap.
const DefaultMaxPairs = 4096

// EnumeratePairs builds the deterministic order-2 work list from a
// completed order-1 sweep, pruned and budget-capped:
//
//   - both components are drawn only from faults whose solo outcome was
//     detected or ignored — a fault that already succeeds alone needs no
//     partner, and a fault that crashes alone leaves no program state
//     for a second fault to steer;
//   - the second fault must strike strictly later in the trace than the
//     first, which both orders the injection physically and halves the
//     symmetric pair space;
//   - enumeration walks candidates in campaign order (first fault outer,
//     second inner) and stops at max pairs (0 means DefaultMaxPairs),
//     so the same solo sweep always yields the same work list.
func EnumeratePairs(solo []Injection, max int) []FaultPair {
	if max <= 0 {
		max = DefaultMaxPairs
	}
	var cand []Fault
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			cand = append(cand, inj.Fault)
		}
	}
	var out []FaultPair
	for i := range cand {
		for j := range cand {
			if cand[j].TraceIndex <= cand[i].TraceIndex {
				continue
			}
			out = append(out, FaultPair{First: cand[i], Second: cand[j]})
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}

// pairConfig composes both faults' emulator hooks onto one run. The
// hooks chain (Config.AddFetchHook/AddStepHook), and each keys off the
// absolute step counter, so the two injections are independent: the
// second fires at its step index even when the first has already sent
// execution down a different path.
func (s *Session) pairConfig(p FaultPair) emu.Config {
	cfg := emu.Config{StepLimit: s.c.InjectionStepLimit}
	if spec := SpecOf(p.First.Model); spec != nil {
		spec.Hooks(p.First, &cfg)
	}
	if spec := SpecOf(p.Second.Model); spec != nil {
		spec.Hooks(p.Second, &cfg)
	}
	return cfg
}

// SimulatePair runs one order-2 injection from the copy-on-write
// snapshot nearest the first fault and classifies its outcome. The
// bit-flip decode pre-screen does not apply here: it relies on the
// reference run reaching the fault site, which the other fault of the
// pair may prevent. Safe for concurrent use.
func (s *Session) SimulatePair(p FaultPair) Outcome {
	first := p.First.TraceIndex
	if p.Second.TraceIndex < first {
		first = p.Second.TraceIndex
	}
	m := s.checkpointFor(uint64(first)).Resume(s.pairConfig(p))
	res, err := m.Run()
	return classify(res, err, s.good)
}

// SimulatePairCold replays an order-2 injection from a freshly
// initialized machine — the reference semantics the snapshot path must
// match bit for bit. Tests cross-validate the two paths; the engine
// never uses it.
func (s *Session) SimulatePairCold(p FaultPair) Outcome {
	cfg := s.pairConfig(p)
	cfg.Stdin = s.c.Bad
	m := emu.New(s.c.Binary, cfg)
	res, err := m.Run()
	return classify(res, err, s.good)
}

// ExecutePairShard simulates the pairs of shard shardIndex (of
// shardCount round-robin shards) on a worker pool, exactly like
// ExecuteShard does for single faults: lock-free cursor, per-worker
// tallies, results at fixed positions — bit-identical regardless of
// worker count.
func (s *Session) ExecutePairShard(pairs []FaultPair, shardIndex, shardCount, workers int, progress func(done, total int)) ([]PairInjection, Tally) {
	sel, outcomes, tally := runShard(pairs, shardIndex, shardCount, s.pool(workers), s.SimulatePair, progress)
	out := make([]PairInjection, len(sel))
	for i, p := range sel {
		out[i] = PairInjection{Pair: p, Outcome: outcomes[i]}
	}
	return out, tally
}
