package fault

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
)

// TestCampaignFastVsSingleStep holds the whole campaign engine to the
// fast path's parity contract: a campaign run on the predecoded
// micro-op path (the default) must produce a report bit-identical to
// the same campaign forced onto the single-step interpreter — every
// model, every injection, the oracles, and the trace.
func TestCampaignFastVsSingleStep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign sweep")
	}
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range RegisteredModels() {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			camp := Campaign{
				Binary: bin, Good: c.Good, Bad: c.Bad,
				Models: []Model{model}, DedupSites: true,
			}
			fast, err := Run(camp)
			if err != nil {
				t.Fatal(err)
			}
			camp.SingleStep = true
			slow, err := Run(camp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast.GoodOracle, slow.GoodOracle) ||
				!reflect.DeepEqual(fast.BadOracle, slow.BadOracle) {
				t.Fatalf("oracle divergence: fast=%+v/%+v slow=%+v/%+v",
					fast.GoodOracle, fast.BadOracle, slow.GoodOracle, slow.BadOracle)
			}
			if len(fast.Injections) != len(slow.Injections) {
				t.Fatalf("injection count divergence: fast=%d slow=%d",
					len(fast.Injections), len(slow.Injections))
			}
			for i := range fast.Injections {
				if fast.Injections[i] != slow.Injections[i] {
					t.Errorf("injection %d: fast=%+v slow=%+v",
						i, fast.Injections[i], slow.Injections[i])
				}
			}
		})
	}
}

// TestPairSweepFastVsSingleStep extends the parity contract to the
// order-2 snapshot tree: the pair sweep's outcomes must not depend on
// the execution strategy either.
func TestPairSweepFastVsSingleStep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential pair sweep")
	}
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{
		Binary: bin, Good: c.Good, Bad: c.Bad,
		Models: []Model{ModelSkip, ModelBitFlip}, DedupSites: true,
	}
	sweep := func(singleStep bool) []PairInjection {
		camp.SingleStep = singleStep
		s, err := NewSession(camp)
		if err != nil {
			t.Fatal(err)
		}
		solo, _ := s.ExecuteShard(0, 1, 0, nil)
		pairs := EnumeratePairs(solo, 256)
		if len(pairs) == 0 {
			t.Fatal("no pairs enumerated")
		}
		out, _ := s.ExecutePairShard(pairs, 0, 1, 0, nil)
		return out
	}
	fast, slow := sweep(false), sweep(true)
	if len(fast) != len(slow) {
		t.Fatalf("pair count divergence: fast=%d slow=%d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("pair %d: fast=%+v slow=%+v", i, fast[i], slow[i])
		}
	}
}
