// Package fault implements the paper's faulter (§IV-B1): simulation of
// hardware fault injection against a target binary, under the
// "instruction skip" and "single bit flip" fault models, with outcome
// classification against good/bad input oracles.
//
// A fault is "successful" when the program, running on the *bad* input,
// produces the observable behaviour of the *good* input — e.g. a pin
// checker granting access without the correct pin. Crashes and otherwise
// divergent behaviour are ignored, exactly as in the paper. Faults that
// end in the injected fault handler (exit code 42) are classified as
// detected — the countermeasure worked.
package fault

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/trace"
)

// Model is a fault model.
type Model uint8

// Supported fault models (paper §IV-B1 and §V-C).
const (
	ModelSkip    Model = iota // skip one instruction
	ModelBitFlip              // flip one bit of one instruction's encoding
)

// String names the fault model as in the paper.
func (m Model) String() string {
	switch m {
	case ModelSkip:
		return "instruction-skip"
	case ModelBitFlip:
		return "single-bit-flip"
	}
	return "?"
}

// DetectedExitCode is the exit status of the injected faulthandler; runs
// ending with it count as detected faults.
const DetectedExitCode = 42

// Fault identifies one injection: a fault model applied at a dynamic
// trace offset (and bit position, for bit flips).
type Fault struct {
	Model      Model
	TraceIndex int    // dynamic occurrence index in the bad-input trace
	Addr       uint64 // static address of the faulted instruction
	Op         isa.Op // mnemonic at that address (from the trace)
	Cond       isa.Cond
	Bit        int  // bit offset into the encoded instruction (bitflip)
	Transient  bool // restore the flipped bit after one fetch
}

// String renders the fault for reports.
func (f Fault) String() string {
	switch f.Model {
	case ModelSkip:
		return fmt.Sprintf("skip @%d (%#x %s)", f.TraceIndex, f.Addr, f.Op)
	default:
		return fmt.Sprintf("bitflip bit %d @%d (%#x %s)", f.Bit, f.TraceIndex, f.Addr, f.Op)
	}
}

// Outcome classifies an injection run.
type Outcome uint8

// Outcomes.
const (
	OutcomeIgnored  Outcome = iota // behaved as bad input, or differently but harmlessly
	OutcomeSuccess                 // behaved as good input: a vulnerability
	OutcomeCrash                   // emulator fault / hang / bad syscall
	OutcomeDetected                // countermeasure fault handler fired
)

// String renders the outcome for reports and summaries.
func (o Outcome) String() string {
	switch o {
	case OutcomeIgnored:
		return "ignored"
	case OutcomeSuccess:
		return "SUCCESS"
	case OutcomeCrash:
		return "crash"
	case OutcomeDetected:
		return "detected"
	}
	return "?"
}

// Observable is the externally visible behaviour the attacker cares
// about: standard output plus exit status.
type Observable struct {
	Stdout   string
	ExitCode int
}

func observe(res emu.Result) Observable {
	return Observable{Stdout: string(res.Stdout), ExitCode: res.ExitCode}
}

// Injection is the result of one fault simulation.
type Injection struct {
	Fault   Fault
	Outcome Outcome
}

// Campaign configures a fault-injection sweep.
type Campaign struct {
	Binary *elf.Binary
	Good   []byte // input accepted by the program
	Bad    []byte // input rejected by the program
	Models []Model

	StepLimit uint64 // reference-run step budget (default emu.DefaultStepLimit)
	Workers   int    // parallel simulations (default GOMAXPROCS)

	// InjectionStepLimit bounds each faulted run. Zero means automatic:
	// eight times the bad-input reference run plus slack — a fault that
	// prolongs execution beyond that is a hang, and classifying it as a
	// crash quickly instead of grinding out the full reference budget
	// is what keeps large bit-flip campaigns tractable.
	InjectionStepLimit uint64

	// DedupSites fault each static (addr) or (addr,bit) pair once
	// instead of at every dynamic occurrence. Cuts loop-heavy campaign
	// cost; the paper faults every trace offset (default false).
	DedupSites bool

	// Transient restores flipped bits after one fetch (default:
	// persistent, as when patching emulator memory and resuming).
	Transient bool

	// MaxFaults caps the number of injections (0 = unlimited).
	MaxFaults int
}

// Report is the campaign outcome.
type Report struct {
	Trace      *trace.Trace
	GoodOracle Observable
	BadOracle  Observable
	Injections []Injection
}

// Errors returned by Run.
var (
	ErrOracle = errors.New("fault: good and bad runs are indistinguishable")
	ErrBadRun = errors.New("fault: reference run failed")
)

// Run executes the campaign: capture oracles and the bad-input trace
// once, then simulate every fault in parallel from copy-on-write
// snapshots of the reference run (see Session). Results are
// bit-identical regardless of worker count.
func Run(c Campaign) (*Report, error) {
	s, err := NewSession(c)
	if err != nil {
		return nil, err
	}
	injections, _ := s.ExecuteShard(0, 1, s.c.Workers, nil)
	return s.Report(injections), nil
}

// enumerate expands the campaign into individual faults.
func enumerate(c Campaign, badTrace *trace.Trace) []Fault {
	var out []Fault
	for _, model := range c.Models {
		seen := make(map[uint64]map[int]bool)
		mark := func(addr uint64, bit int) bool {
			if !c.DedupSites {
				return true
			}
			bits, ok := seen[addr]
			if !ok {
				bits = make(map[int]bool)
				seen[addr] = bits
			}
			if bits[bit] {
				return false
			}
			bits[bit] = true
			return true
		}
		for i, e := range badTrace.Entries {
			switch model {
			case ModelSkip:
				if mark(e.Addr, 0) {
					out = append(out, Fault{
						Model: ModelSkip, TraceIndex: i,
						Addr: e.Addr, Op: e.Op, Cond: e.Cond,
					})
				}
			case ModelBitFlip:
				for bit := 0; bit < e.Len*8; bit++ {
					if mark(e.Addr, bit) {
						out = append(out, Fault{
							Model: ModelBitFlip, TraceIndex: i,
							Addr: e.Addr, Op: e.Op, Cond: e.Cond,
							Bit: bit, Transient: c.Transient,
						})
					}
				}
			}
		}
	}
	return out
}

// classify maps a finished injection run to its outcome against the
// good-input oracle.
func classify(res emu.Result, err error, good Observable) Outcome {
	if err != nil || !res.Exited {
		return OutcomeCrash
	}
	if res.ExitCode == DetectedExitCode || bytes.Contains(res.Stderr, []byte("FAULT")) {
		return OutcomeDetected
	}
	if observe(res) == good {
		return OutcomeSuccess
	}
	return OutcomeIgnored
}

// FilterModels returns a view of the report restricted to the given
// fault models, preserving campaign order. Because campaigns enumerate
// each model's faults independently, the filtered view is bit-identical
// to a campaign run with only those models (as long as MaxFaults did
// not truncate the original). The trace and oracles are shared, not
// copied.
func (r *Report) FilterModels(models ...Model) *Report {
	keep := make(map[Model]bool, len(models))
	for _, m := range models {
		keep[m] = true
	}
	out := &Report{
		Trace:      r.Trace,
		GoodOracle: r.GoodOracle,
		BadOracle:  r.BadOracle,
	}
	for _, inj := range r.Injections {
		if keep[inj.Fault.Model] {
			out.Injections = append(out.Injections, inj)
		}
	}
	return out
}

// Successful returns the injections that constitute vulnerabilities.
func (r *Report) Successful() []Injection {
	var out []Injection
	for _, inj := range r.Injections {
		if inj.Outcome == OutcomeSuccess {
			out = append(out, inj)
		}
	}
	return out
}

// Count returns how many injections had the given outcome.
func (r *Report) Count(o Outcome) int {
	n := 0
	for _, inj := range r.Injections {
		if inj.Outcome == o {
			n++
		}
	}
	return n
}

// Site aggregates successful faults by static instruction address.
type Site struct {
	Addr     uint64
	Op       isa.Op
	Cond     isa.Cond
	Mnemonic string
	Count    int // successful injections at this address
}

// VulnerableSites groups the successful injections by address, sorted
// by address. This is the patcher's work list.
func (r *Report) VulnerableSites() []Site {
	byAddr := make(map[uint64]*Site)
	for _, inj := range r.Injections {
		if inj.Outcome != OutcomeSuccess {
			continue
		}
		s, ok := byAddr[inj.Fault.Addr]
		if !ok {
			in := isa.Inst{Op: inj.Fault.Op, Cond: inj.Fault.Cond}
			s = &Site{
				Addr:     inj.Fault.Addr,
				Op:       inj.Fault.Op,
				Cond:     inj.Fault.Cond,
				Mnemonic: in.Mnemonic(),
			}
			byAddr[inj.Fault.Addr] = s
		}
		s.Count++
	}
	out := make([]Site, 0, len(byAddr))
	for _, s := range byAddr {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// VulnClass is the coarse mnemonic clustering used by the paper's claim
// that all vulnerabilities come from the conditional-jump cluster
// (mov/cmp/jcc and the instructions feeding them).
type VulnClass string

// Vulnerability classes.
const (
	ClassMov    VulnClass = "mov"
	ClassCmp    VulnClass = "cmp"
	ClassBranch VulnClass = "branch"
	ClassOther  VulnClass = "other"
)

// Classify maps an op to its vulnerability class.
func Classify(op isa.Op) VulnClass {
	switch op {
	case isa.MOV, isa.MOVZX, isa.MOVSX, isa.LEA:
		return ClassMov
	case isa.CMP, isa.TEST:
		return ClassCmp
	case isa.JCC, isa.JMP:
		return ClassBranch
	default:
		return ClassOther
	}
}

// ClassCounts tallies successful-fault sites by class.
func (r *Report) ClassCounts() map[VulnClass]int {
	out := make(map[VulnClass]int)
	for _, s := range r.VulnerableSites() {
		out[Classify(s.Op)]++
	}
	return out
}

// Summary renders campaign statistics.
func (r *Report) Summary() string {
	return fmt.Sprintf("injections=%d success=%d detected=%d crash=%d ignored=%d sites=%d",
		len(r.Injections), r.Count(OutcomeSuccess), r.Count(OutcomeDetected),
		r.Count(OutcomeCrash), r.Count(OutcomeIgnored), len(r.VulnerableSites()))
}
