// Package fault implements the paper's faulter (§IV-B1): simulation of
// hardware fault injection against a target binary under a pluggable
// catalog of fault models, with outcome classification against good/bad
// input oracles.
//
// The paper's two models (instruction skip, single bit flip) plus
// register bit-flip, multi-instruction skip, and transient data flip
// are built in; new models implement ModelSpec and plug in through
// Register (see model.go). Order-2 campaigns inject deterministic
// *pairs* of faults (see pair.go), the attack that defeats
// single-fault-hardened binaries.
//
// A fault is "successful" when the program, running on the *bad* input,
// produces the observable behaviour of the *good* input — e.g. a pin
// checker granting access without the correct pin. Crashes and otherwise
// divergent behaviour are ignored, exactly as in the paper. Faults that
// end in the injected fault handler (exit code 42) are classified as
// detected — the countermeasure worked.
package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/trace"
)

// DetectedExitCode is the exit status of the injected faulthandler; runs
// ending with it count as detected faults.
const DetectedExitCode = 42

// Fault identifies one injection: a fault model applied at a dynamic
// trace offset, plus the model-specific coordinates (bit position,
// register, window length).
type Fault struct {
	Model      Model
	TraceIndex int    // dynamic occurrence index in the bad-input trace
	Addr       uint64 // static address of the faulted instruction
	Op         isa.Op // mnemonic at that address (from the trace)
	Cond       isa.Cond
	Bit        int     // bit offset: instruction encoding (bitflip), register (reg-flip), operand cell (data-flip)
	Transient  bool    // restore the flipped bit after one fetch (bitflip)
	Reg        isa.Reg // faulted register (reg-flip)
	Window     int     // consecutive instructions skipped (multi-skip)
}

// String renders the fault for reports.
func (f Fault) String() string {
	var s string
	switch f.Model {
	case ModelSkip:
		s = fmt.Sprintf("skip @%d (%#x %s)", f.TraceIndex, f.Addr, f.Op)
	case ModelBitFlip:
		s = fmt.Sprintf("bitflip bit %d @%d (%#x %s)", f.Bit, f.TraceIndex, f.Addr, f.Op)
	case ModelRegFlip:
		s = fmt.Sprintf("regflip %s bit %d @%d (%#x %s)", f.Reg, f.Bit, f.TraceIndex, f.Addr, f.Op)
	case ModelMultiSkip:
		s = fmt.Sprintf("skip %d @%d..%d (%#x %s)", f.Window, f.TraceIndex, f.TraceIndex+f.Window-1, f.Addr, f.Op)
	case ModelDataFlip:
		s = fmt.Sprintf("dataflip bit %d @%d (%#x %s)", f.Bit, f.TraceIndex, f.Addr, f.Op)
	default:
		s = fmt.Sprintf("%s @%d (%#x %s)", f.Model, f.TraceIndex, f.Addr, f.Op)
	}
	if f.Transient {
		s += " transient"
	}
	return s
}

// Outcome classifies an injection run.
type Outcome uint8

// Outcomes.
const (
	OutcomeIgnored  Outcome = iota // behaved as bad input, or differently but harmlessly
	OutcomeSuccess                 // behaved as good input: a vulnerability
	OutcomeCrash                   // emulator fault / hang / bad syscall
	OutcomeDetected                // countermeasure fault handler fired
)

// String renders the outcome for reports and summaries.
func (o Outcome) String() string {
	switch o {
	case OutcomeIgnored:
		return "ignored"
	case OutcomeSuccess:
		return "SUCCESS"
	case OutcomeCrash:
		return "crash"
	case OutcomeDetected:
		return "detected"
	}
	return "?"
}

// MarshalJSON renders the outcome as its string form.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON accepts the string forms emitted by MarshalJSON
// (case-insensitively, so "success" round-trips too).
func (o *Outcome) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch strings.ToLower(s) {
	case "ignored":
		*o = OutcomeIgnored
	case "success":
		*o = OutcomeSuccess
	case "crash":
		*o = OutcomeCrash
	case "detected":
		*o = OutcomeDetected
	default:
		return fmt.Errorf("fault: unknown outcome %q", s)
	}
	return nil
}

// Observable is the externally visible behaviour the attacker cares
// about: standard output plus exit status.
type Observable struct {
	Stdout   string
	ExitCode int
}

func observe(res emu.Result) Observable {
	return Observable{Stdout: string(res.Stdout), ExitCode: res.ExitCode}
}

// Injection is the result of one fault simulation.
type Injection struct {
	Fault   Fault
	Outcome Outcome
}

// Campaign configures a fault-injection sweep.
type Campaign struct {
	Binary *elf.Binary
	Good   []byte // input accepted by the program
	Bad    []byte // input rejected by the program
	Models []Model

	StepLimit uint64 // reference-run step budget (default emu.DefaultStepLimit)
	Workers   int    // parallel simulations (default GOMAXPROCS)

	// InjectionStepLimit bounds each faulted run. Zero means automatic:
	// eight times the bad-input reference run plus slack — a fault that
	// prolongs execution beyond that is a hang, and classifying it as a
	// crash quickly instead of grinding out the full reference budget
	// is what keeps large bit-flip campaigns tractable.
	InjectionStepLimit uint64

	// DedupSites fault each static (addr) or (addr,bit) pair once
	// instead of at every dynamic occurrence. Cuts loop-heavy campaign
	// cost; the paper faults every trace offset (default false).
	DedupSites bool

	// Transient restores flipped bits after one fetch (default:
	// persistent, as when patching emulator memory and resuming).
	Transient bool

	// MaxFaults caps the number of injections (0 = unlimited).
	MaxFaults int

	// SingleStep forces every simulation onto the emulator's per-step
	// interpreter instead of the predecoded micro-op fast path. The
	// two are bit-identical by contract; differential tests set this
	// to prove it at campaign level. Default off.
	SingleStep bool
}

// Report is the campaign outcome.
type Report struct {
	Trace      *trace.Trace
	GoodOracle Observable
	BadOracle  Observable
	Injections []Injection
}

// Errors returned by Run.
var (
	ErrOracle       = errors.New("fault: good and bad runs are indistinguishable")
	ErrBadRun       = errors.New("fault: reference run failed")
	ErrUnknownModel = errors.New("fault: unregistered fault model")
)

// Run executes the campaign: capture oracles and the bad-input trace
// once, then simulate every fault in parallel from copy-on-write
// snapshots of the reference run (see Session). Results are
// bit-identical regardless of worker count.
func Run(c Campaign) (*Report, error) {
	s, err := NewSession(c)
	if err != nil {
		return nil, err
	}
	injections, _ := s.ExecuteShard(0, 1, s.c.Workers, nil)
	return s.Report(injections), nil
}

// enumerate expands the campaign into individual faults by dispatching
// to each selected model's registered spec. Each model enumerates with
// a fresh dedup scope, so multi-model fault lists concatenate exactly
// like independent single-model campaigns (the FilterModels guarantee).
func enumerate(c Campaign, badTrace *trace.Trace, insts map[uint64]*isa.Inst) ([]Fault, error) {
	var out []Fault
	ctx := &EnumContext{Campaign: &c, Trace: badTrace, insts: insts}
	for _, model := range c.Models {
		spec := SpecOf(model)
		if spec == nil {
			return nil, fmt.Errorf("%w: model %d", ErrUnknownModel, model)
		}
		ctx.seen = make(map[uint64]map[int]bool)
		spec.Enumerate(ctx, func(f Fault) { out = append(out, f) })
	}
	return out, nil
}

// classify maps a finished injection run to its outcome against the
// good-input oracle.
func classify(res emu.Result, err error, good Observable) Outcome {
	if err != nil || !res.Exited {
		return OutcomeCrash
	}
	if res.ExitCode == DetectedExitCode || bytes.Contains(res.Stderr, []byte("FAULT")) {
		return OutcomeDetected
	}
	if observe(res) == good {
		return OutcomeSuccess
	}
	return OutcomeIgnored
}

// FilterModels returns a view of the report restricted to the given
// fault models, preserving campaign order. Because campaigns enumerate
// each model's faults independently, the filtered view is bit-identical
// to a campaign run with only those models (as long as MaxFaults did
// not truncate the original). The trace and oracles are shared, not
// copied.
func (r *Report) FilterModels(models ...Model) *Report {
	keep := make(map[Model]bool, len(models))
	for _, m := range models {
		keep[m] = true
	}
	out := &Report{
		Trace:      r.Trace,
		GoodOracle: r.GoodOracle,
		BadOracle:  r.BadOracle,
	}
	for _, inj := range r.Injections {
		if keep[inj.Fault.Model] {
			out.Injections = append(out.Injections, inj)
		}
	}
	return out
}

// Successful returns the injections that constitute vulnerabilities.
func (r *Report) Successful() []Injection {
	var out []Injection
	for _, inj := range r.Injections {
		if inj.Outcome == OutcomeSuccess {
			out = append(out, inj)
		}
	}
	return out
}

// Count returns how many injections had the given outcome.
func (r *Report) Count(o Outcome) int {
	n := 0
	for _, inj := range r.Injections {
		if inj.Outcome == o {
			n++
		}
	}
	return n
}

// Site aggregates successful faults by static instruction address.
type Site struct {
	Addr     uint64
	Op       isa.Op
	Cond     isa.Cond
	Mnemonic string
	Count    int // successful injections at this address
}

// VulnerableSites groups the successful injections by address, sorted
// by address. This is the patcher's work list.
func (r *Report) VulnerableSites() []Site {
	byAddr := make(map[uint64]*Site)
	for _, inj := range r.Injections {
		if inj.Outcome != OutcomeSuccess {
			continue
		}
		s, ok := byAddr[inj.Fault.Addr]
		if !ok {
			in := isa.Inst{Op: inj.Fault.Op, Cond: inj.Fault.Cond}
			s = &Site{
				Addr:     inj.Fault.Addr,
				Op:       inj.Fault.Op,
				Cond:     inj.Fault.Cond,
				Mnemonic: in.Mnemonic(),
			}
			byAddr[inj.Fault.Addr] = s
		}
		s.Count++
	}
	out := make([]Site, 0, len(byAddr))
	for _, s := range byAddr {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// VulnClass is the coarse mnemonic clustering used by the paper's claim
// that all vulnerabilities come from the conditional-jump cluster
// (mov/cmp/jcc and the instructions feeding them).
type VulnClass string

// Vulnerability classes.
const (
	ClassMov    VulnClass = "mov"
	ClassCmp    VulnClass = "cmp"
	ClassBranch VulnClass = "branch"
	ClassOther  VulnClass = "other"
)

// Classify maps an op to its vulnerability class.
func Classify(op isa.Op) VulnClass {
	switch op {
	case isa.MOV, isa.MOVZX, isa.MOVSX, isa.LEA:
		return ClassMov
	case isa.CMP, isa.TEST:
		return ClassCmp
	case isa.JCC, isa.JMP:
		return ClassBranch
	default:
		return ClassOther
	}
}

// ClassCounts tallies successful-fault sites by class.
func (r *Report) ClassCounts() map[VulnClass]int {
	out := make(map[VulnClass]int)
	for _, s := range r.VulnerableSites() {
		out[Classify(s.Op)]++
	}
	return out
}

// Summary renders campaign statistics.
func (r *Report) Summary() string {
	return fmt.Sprintf("injections=%d success=%d detected=%d crash=%d ignored=%d sites=%d",
		len(r.Injections), r.Count(OutcomeSuccess), r.Count(OutcomeDetected),
		r.Count(OutcomeCrash), r.Count(OutcomeIgnored), len(r.VulnerableSites()))
}
