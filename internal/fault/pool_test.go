package fault

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunkCursorCoversRange: concurrent Grabs partition [0, n) into
// disjoint, in-order chunks with no unit lost or duplicated.
func TestChunkCursorCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		cur := NewChunkCursor(n, 4)
		seen := make([]atomic.Int32, n)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo, hi, ok := cur.Grab()
					if !ok {
						return
					}
					if lo >= hi || lo < 0 || hi > n {
						t.Errorf("n=%d: bad chunk [%d,%d)", n, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						seen[i].Add(1)
					}
				}
			}()
		}
		wg.Wait()
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: unit %d grabbed %d times", n, i, got)
			}
		}
		if rem := cur.Remaining(); rem != 0 {
			t.Fatalf("n=%d: drained cursor reports %d remaining", n, rem)
		}
	}
}

// TestChunkSpanBounds: the guided self-scheduling span stays within
// [1, maxChunk] and shrinks as the queue drains, so tail chunks are
// small enough for stealing to balance them.
func TestChunkSpanBounds(t *testing.T) {
	for _, tc := range []struct {
		remaining, workers, want int
	}{
		{0, 4, 1},        // floor: always make progress
		{1, 4, 1},        // floor
		{16, 4, 1},       // 16/(4*4) = 1
		{1024, 4, 64},    // 1024/16 = 64 = cap
		{1 << 20, 8, 64}, // huge queue: capped
		{100, 1, 25},     // 100/4
		{100, 0, 25},     // workers floor-clamped to 1
		{8, 100, 1},      // more workers than work
	} {
		if got := chunkSpan(tc.remaining, tc.workers); got != tc.want {
			t.Errorf("chunkSpan(%d, %d) = %d, want %d",
				tc.remaining, tc.workers, got, tc.want)
		}
	}
}

// TestGoPoolExecute: the private per-call pool covers [0, n) exactly
// once for worker counts below, at, and above the unit count — the
// seam Session.ExecuteShardSim and the pair/triple shards run on when
// no shared scheduler is injected.
func TestGoPoolExecute(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		for _, n := range []int{0, 1, 5, 129} {
			hits := make([]atomic.Int32, n)
			goPool{workers: workers}.Execute(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: unit %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}
