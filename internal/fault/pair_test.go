package fault

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

func mustAssemble(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func pairSession(t *testing.T, models ...Model) (*Session, []Injection, []FaultPair) {
	t.Helper()
	s, err := NewSession(Campaign{
		Binary: buildMini(t), Good: goodPin, Bad: badPin, Models: models,
	})
	if err != nil {
		t.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	return s, solo, EnumeratePairs(solo, 0)
}

// TestEnumeratePairsPruning: pairs draw both components from
// detected/ignored solo outcomes, order the second strictly after the
// first, and respect the budget cap.
func TestEnumeratePairsPruning(t *testing.T) {
	_, solo, pairs := pairSession(t, ModelSkip)
	if len(pairs) == 0 {
		t.Fatal("no pairs enumerated")
	}
	eligible := map[Fault]bool{}
	for _, inj := range solo {
		if inj.Outcome == OutcomeDetected || inj.Outcome == OutcomeIgnored {
			eligible[inj.Fault] = true
		}
	}
	for _, p := range pairs {
		if !eligible[p.First] || !eligible[p.Second] {
			t.Errorf("pair %v uses a non-eligible component", p)
		}
		if p.Second.TraceIndex <= p.First.TraceIndex {
			t.Errorf("pair %v: second fault not strictly later in the trace", p)
		}
	}
	// Deterministic: re-enumeration of the same sweep is identical.
	if again := EnumeratePairs(solo, 0); !reflect.DeepEqual(pairs, again) {
		t.Error("pair enumeration not deterministic")
	}
	// Budget cap.
	capped := EnumeratePairs(solo, 5)
	if len(capped) != 5 {
		t.Errorf("capped enumeration returned %d pairs, want 5", len(capped))
	}
	if !reflect.DeepEqual(capped, pairs[:5]) {
		t.Error("capped enumeration is not a prefix of the full list")
	}
}

// TestSimulatePairMatchesColdPath: the snapshot path must classify
// every pair exactly as a cold replay from _start, across model
// combinations (the hooks of both faults compose).
func TestSimulatePairMatchesColdPath(t *testing.T) {
	for _, models := range [][]Model{
		{ModelSkip}, {ModelBitFlip}, {ModelSkip, ModelRegFlip}, {ModelMultiSkip, ModelDataFlip},
	} {
		_, _, pairs := pairSession(t, models...)
		s, _, _ := pairSession(t, models...)
		if len(pairs) > 300 {
			pairs = pairs[:300] // bound the cross-validation cost
		}
		for _, p := range pairs {
			if warm, cold := s.SimulatePair(p), s.SimulatePairCold(p); warm != cold {
				t.Errorf("%v %v: snapshot path %v, cold path %v", models, p, warm, cold)
			}
		}
	}
}

// TestExecutePairShardDeterminism: pair results are bit-identical
// across worker counts, and round-robin shards recombine to the
// unsharded run.
func TestExecutePairShardDeterminism(t *testing.T) {
	s, _, pairs := pairSession(t, ModelSkip, ModelBitFlip)
	serial, serialTally := s.ExecutePairShard(pairs, 0, 1, 1, nil)
	parallel, parallelTally := s.ExecutePairShard(pairs, 0, 1, 8, nil)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("1-worker and 8-worker pair sweeps differ")
	}
	if serialTally != parallelTally {
		t.Fatalf("tallies differ: %v vs %v", serialTally, parallelTally)
	}
	if serialTally.Total() != len(pairs) {
		t.Fatalf("tally covers %d of %d pairs", serialTally.Total(), len(pairs))
	}

	const n = 3
	var shards [n][]PairInjection
	for i := 0; i < n; i++ {
		shards[i], _ = s.ExecutePairShard(pairs, i, n, 2, nil)
	}
	var merged []PairInjection
	cursor := [n]int{}
	for j := 0; j < len(serial); j++ {
		w := j % n
		merged = append(merged, shards[w][cursor[w]])
		cursor[w]++
	}
	if !reflect.DeepEqual(merged, serial) {
		t.Error("recombined pair shards differ from the unsharded run")
	}
}

// TestPairDefeatsSingleFaultDetection: the motivating scenario — a
// program whose lone skip vulnerability is guarded by a redundant
// check falls only to the *pair* that skips both the branch and its
// re-check (Boespflug et al.).
func TestPairDefeatsSingleFaultDetection(t *testing.T) {
	// Double-checked pincheck: the grant path re-validates the pin; a
	// single skip of either branch is caught by the other (denied or
	// detected), but skipping both grants.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
	cmp rax, rbx
	jne handler
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
handler:
	mov rax, 60
	mov rdi, 42
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`
	bin := mustAssemble(t, src)
	s, err := NewSession(Campaign{
		Binary: bin, Good: goodPin, Bad: badPin, Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	pairs := EnumeratePairs(solo, 0)
	injections, tally := s.ExecutePairShard(pairs, 0, 1, 0, nil)
	if tally.Count(OutcomeSuccess) == 0 {
		t.Fatal("no successful fault pair against the double-checked pincheck")
	}
	// The winning attack starts by skipping the first jne; the second
	// skip then lands on the re-check in the *diverged* run (fault
	// metadata records the reference trace, so only First's op is
	// meaningful here). No single skip may grant on its own.
	firstIsBranch := false
	for _, pi := range injections {
		if pi.Outcome == OutcomeSuccess && pi.Pair.First.Op == isa.JCC {
			firstIsBranch = true
		}
	}
	if !firstIsBranch {
		t.Error("no successful pair starts by skipping the conditional branch")
	}
	for _, inj := range solo {
		if inj.Outcome == OutcomeSuccess {
			t.Errorf("single fault %v already grants — program not double-checked", inj.Fault)
		}
	}
}
