package fault

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/trace"
)

// Model identifies a registered fault model. The two models of the
// paper (instruction skip, single bit flip) and three beyond-the-paper
// models (register bit flip, multi-instruction skip, transient data
// flip) are built in; new models plug in through Register without
// touching the campaign engine.
type Model uint8

// Built-in fault models. ModelSkip and ModelBitFlip are the paper's
// (§IV-B1, §V-C); the rest follow ARMORY's catalog argument — exhaustive
// simulation pays off over many fault models, not two.
const (
	ModelSkip      Model = iota // skip one instruction
	ModelBitFlip                // flip one bit of one instruction's encoding
	ModelRegFlip                // flip one bit of a live register at a trace point
	ModelMultiSkip              // skip a window of 2-4 consecutive instructions
	ModelDataFlip               // flip one bit of a memory operand's cell at access time
)

// String names the fault model (the registered spec's canonical name).
func (m Model) String() string {
	if s := SpecOf(m); s != nil {
		return s.Name()
	}
	return "?"
}

// MarshalJSON renders the model as its canonical name, so exports never
// hand-roll the stringification.
func (m Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts a canonical model name or CLI alias.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseModel(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// EnumContext hands a ModelSpec everything fault enumeration may need:
// the campaign configuration, the bad-input reference trace, and the
// decoded instruction at each traced address.
type EnumContext struct {
	Campaign *Campaign
	Trace    *trace.Trace

	insts map[uint64]*isa.Inst
	seen  map[uint64]map[int]bool
}

// Inst returns the decoded instruction at a traced address, or nil when
// decoding was unavailable (self-modifying reference run, or a spec
// that declared NeedsInsts()==false).
func (ctx *EnumContext) Inst(addr uint64) *isa.Inst { return ctx.insts[addr] }

// Mark implements the campaign's DedupSites policy for a model: it
// reports whether the (addr, key) fault site is fresh. With DedupSites
// off it always reports true (the paper faults every dynamic trace
// offset). key disambiguates fault variants at one address — bit index,
// window length, register×bit — exactly as the model defines it.
func (ctx *EnumContext) Mark(addr uint64, key int) bool {
	if !ctx.Campaign.DedupSites {
		return true
	}
	keys, ok := ctx.seen[addr]
	if !ok {
		keys = make(map[int]bool)
		ctx.seen[addr] = keys
	}
	if keys[key] {
		return false
	}
	keys[key] = true
	return true
}

// ModelSpec is a pluggable fault model: it enumerates the faults it
// induces on a reference trace and installs the emulator hooks that
// realize one of them in a forked run.
//
// Contract: Enumerate must be deterministic (campaign reports are
// bit-identical across workers and shards because the fault list is),
// and Hooks must key any step-indexed behaviour off the machine's
// absolute step counter, so a run resumed from a mid-trace snapshot
// behaves exactly like a cold run from _start.
type ModelSpec interface {
	// Model returns the identifier the spec is registered under.
	Model() Model

	// Name is the canonical string form used in reports and exports.
	Name() string

	// NeedsInsts reports whether Enumerate inspects decoded
	// instructions (EnumContext.Inst); sessions only build the
	// instruction map when some selected model asks for it.
	NeedsInsts() bool

	// Enumerate emits every fault of this model for the reference
	// trace, in deterministic order.
	Enumerate(ctx *EnumContext, emit func(Fault))

	// Hooks installs the emulator hooks realizing fault f into cfg,
	// using Config.AddFetchHook/AddStepHook so several faults compose
	// onto one run (order-2 campaigns).
	Hooks(f Fault, cfg *emu.Config)
}

// EffectHorizon is an optional ModelSpec extension for models whose
// hooks have a bounded effect window. EffectEnd returns the machine
// step count after which fault f's hooks are inert: a machine that has
// completed EffectEnd(f) steps behaves identically from then on whether
// or not the hooks are still installed.
//
// Declaring a horizon lets the order-2 engine build the first-fault
// snapshot tree (see Session.ExecutePairShard): the first fault's run
// is paused once its hooks are inert, snapshotted, and forked per
// second fault, replacing O(pairs) prefix replays with O(distinct first
// faults). Models without a horizon (hooks that stay live for the whole
// run) simply fall back to the per-pair path; correctness never depends
// on the declaration, only performance — but a horizon that is too
// early is a soundness bug, caught by the pair warm/cold identity
// tests.
type EffectHorizon interface {
	EffectEnd(f Fault) uint64
}

// effectEnd resolves a fault's effect horizon, when its registered spec
// declares one.
func effectEnd(f Fault) (uint64, bool) {
	h, ok := SpecOf(f.Model).(EffectHorizon)
	if !ok {
		return 0, false
	}
	return h.EffectEnd(f), true
}

// registry maps models to their specs. Guarded by a mutex so tests and
// third-party packages can register from init functions concurrently.
var (
	regMu    sync.RWMutex
	registry = map[Model]ModelSpec{}
	aliases  = map[string]Model{}
)

// Register installs a fault-model spec, with optional extra parse
// aliases beyond its canonical name. It panics on a duplicate model id
// or name — registration is an init-time, programmer-error surface.
func Register(spec ModelSpec, extraAliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	m := spec.Model()
	if _, dup := registry[m]; dup {
		panic(fmt.Sprintf("fault: model %d registered twice", m))
	}
	names := append([]string{spec.Name()}, extraAliases...)
	for _, n := range names {
		if _, dup := aliases[n]; dup {
			panic(fmt.Sprintf("fault: model name %q registered twice", n))
		}
	}
	registry[m] = spec
	for _, n := range names {
		aliases[n] = m
	}
}

// SpecOf returns the spec registered for a model, or nil.
func SpecOf(m Model) ModelSpec {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[m]
}

// RegisteredModels returns every registered model in ascending id
// order.
func RegisteredModels() []Model {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Model, 0, len(registry))
	for m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CatalogNames renders every registered model as
// "canonical-name (alias, ...)" in ascending id order — the list error
// messages and help text show users.
func CatalogNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	models := make([]Model, 0, len(registry))
	for m := range registry {
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return models[i] < models[j] })
	extras := map[Model][]string{}
	for name, m := range aliases {
		if name != registry[m].Name() {
			extras[m] = append(extras[m], name)
		}
	}
	out := make([]string, 0, len(models))
	for _, m := range models {
		s := registry[m].Name()
		if ex := extras[m]; len(ex) > 0 {
			sort.Strings(ex)
			s += " (" + strings.Join(ex, ", ") + ")"
		}
		out = append(out, s)
	}
	return out
}

// ParseModel resolves a canonical model name or alias. Unknown names
// fail with the registered catalog spelled out, so a typo on the
// command line is self-correcting.
func ParseModel(name string) (Model, error) {
	regMu.RLock()
	m, ok := aliases[strings.TrimSpace(name)]
	regMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("fault: unknown fault model %q (registered: %s; plus the keywords both, all)",
			name, strings.Join(CatalogNames(), ", "))
	}
	return m, nil
}

// ParseModels resolves a comma-separated model list. The keywords
// "both" (the paper's skip + bitflip pair) and "all" (every registered
// model) expand in place; an empty string means "both".
func ParseModels(spec string) ([]Model, error) {
	if strings.TrimSpace(spec) == "" {
		spec = "both"
	}
	var out []Model
	seen := map[Model]bool{}
	add := func(m Model) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "both":
			add(ModelSkip)
			add(ModelBitFlip)
		case "all":
			for _, m := range RegisteredModels() {
				add(m)
			}
		default:
			m, err := ParseModel(part)
			if err != nil {
				return nil, err
			}
			add(m)
		}
	}
	return out, nil
}

func init() {
	Register(SkipSpec{}, "skip")
	Register(BitFlipSpec{}, "bitflip", "bit-flip")
	Register(RegFlipSpec{}, "reg-flip", "regflip")
	Register(MultiSkipSpec{MinWindow: 2, MaxWindow: 4}, "multi-skip", "multiskip")
	Register(DataFlipSpec{}, "data-flip", "dataflip")
}

// ---------------------------------------------------------------------
// Instruction skip (paper §IV-B1).
// ---------------------------------------------------------------------

// SkipSpec is the paper's instruction-skip model: the instruction at
// one dynamic trace offset is fetched and decoded but not executed.
type SkipSpec struct{}

// Model implements ModelSpec.
func (SkipSpec) Model() Model { return ModelSkip }

// Name implements ModelSpec.
func (SkipSpec) Name() string { return "instruction-skip" }

// NeedsInsts implements ModelSpec.
func (SkipSpec) NeedsInsts() bool { return false }

// Enumerate implements ModelSpec: one fault per trace offset.
func (SkipSpec) Enumerate(ctx *EnumContext, emit func(Fault)) {
	for i, e := range ctx.Trace.Entries {
		if ctx.Mark(e.Addr, 0) {
			emit(Fault{
				Model: ModelSkip, TraceIndex: i,
				Addr: e.Addr, Op: e.Op, Cond: e.Cond,
			})
		}
	}
}

// Hooks implements ModelSpec. The declared arming window mirrors
// EffectEnd: outside it the emulator may run predecoded blocks without
// consulting the hook.
func (SkipSpec) Hooks(f Fault, cfg *emu.Config) {
	ti := uint64(f.TraceIndex)
	cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
		// Steps is incremented before the hook runs, so the currently
		// executing instruction has index Steps-1.
		if m.Steps-1 == ti {
			return emu.ActSkip
		}
		return emu.ActContinue
	}, ti, ti+1)
}

// EffectEnd implements EffectHorizon: the skip acts during step
// TraceIndex, so the hook is inert once that step has completed.
func (SkipSpec) EffectEnd(f Fault) uint64 { return uint64(f.TraceIndex) + 1 }

// ---------------------------------------------------------------------
// Single bit flip (paper §IV-B1).
// ---------------------------------------------------------------------

// BitFlipSpec is the paper's single-bit-flip model: one bit of one
// instruction's encoding is flipped in emulator memory just before the
// fetch at one trace offset (restored after one fetch when the campaign
// asks for transient faults).
type BitFlipSpec struct{}

// Model implements ModelSpec.
func (BitFlipSpec) Model() Model { return ModelBitFlip }

// Name implements ModelSpec.
func (BitFlipSpec) Name() string { return "single-bit-flip" }

// NeedsInsts implements ModelSpec.
func (BitFlipSpec) NeedsInsts() bool { return false }

// Enumerate implements ModelSpec: every bit of every traced
// instruction's encoding.
func (BitFlipSpec) Enumerate(ctx *EnumContext, emit func(Fault)) {
	for i, e := range ctx.Trace.Entries {
		for bit := 0; bit < e.Len*8; bit++ {
			if ctx.Mark(e.Addr, bit) {
				emit(Fault{
					Model: ModelBitFlip, TraceIndex: i,
					Addr: e.Addr, Op: e.Op, Cond: e.Cond,
					Bit: bit, Transient: ctx.Campaign.Transient,
				})
			}
		}
	}
}

// Hooks implements ModelSpec. The arming window spans the flip and,
// for transient faults, the restoring flip one step later — the same
// range EffectEnd declares.
func (BitFlipSpec) Hooks(f Fault, cfg *emu.Config) {
	ti := uint64(f.TraceIndex)
	flipAddr := f.Addr + uint64(f.Bit/8)
	flipBit := uint(f.Bit % 8)
	transient := f.Transient
	end := ti + 1
	if transient {
		end = ti + 2
	}
	cfg.AddFetchHookWindow(func(m *emu.Machine) {
		// The hook runs before Steps is incremented, so the
		// instruction about to be fetched has index Steps.
		switch m.Steps {
		case ti:
			_ = m.Mem.FlipBit(flipAddr, flipBit)
		case ti + 1:
			if transient {
				_ = m.Mem.FlipBit(flipAddr, flipBit)
			}
		}
	}, ti, end)
}

// EffectEnd implements EffectHorizon: the flip lands at the fetch of
// step TraceIndex; a transient fault restores the bit one fetch later,
// i.e. during step TraceIndex+1. (A persistent flip stays in memory,
// but that is machine state a snapshot carries — the *hook* is done.)
func (BitFlipSpec) EffectEnd(f Fault) uint64 {
	if f.Transient {
		return uint64(f.TraceIndex) + 2
	}
	return uint64(f.TraceIndex) + 1
}

// ---------------------------------------------------------------------
// Register bit flip (beyond the paper; cf. ARMORY's register faults).
// ---------------------------------------------------------------------

// RegFlipSpec flips one bit of one live register immediately before the
// instruction at a trace offset executes. "Live" means the instruction
// actually reads the register — as an operand, as a memory base/index,
// or implicitly (syscall argument registers, the stack pointer of
// push/pop/call/ret) — so every enumerated fault can change behaviour.
type RegFlipSpec struct{}

// Model implements ModelSpec.
func (RegFlipSpec) Model() Model { return ModelRegFlip }

// Name implements ModelSpec.
func (RegFlipSpec) Name() string { return "register-bit-flip" }

// NeedsInsts implements ModelSpec.
func (RegFlipSpec) NeedsInsts() bool { return true }

// Enumerate implements ModelSpec: each register the traced instruction
// reads × each bit of the width it is read at.
func (RegFlipSpec) Enumerate(ctx *EnumContext, emit func(Fault)) {
	for i, e := range ctx.Trace.Entries {
		in := ctx.Inst(e.Addr)
		if in == nil {
			continue
		}
		for _, t := range readRegs(in) {
			for bit := 0; bit < t.bits; bit++ {
				if ctx.Mark(e.Addr, int(t.reg)*64+bit) {
					emit(Fault{
						Model: ModelRegFlip, TraceIndex: i,
						Addr: e.Addr, Op: e.Op, Cond: e.Cond,
						Reg: t.reg, Bit: bit,
					})
				}
			}
		}
	}
}

// Hooks implements ModelSpec, with the one-step arming window
// EffectEnd declares.
func (RegFlipSpec) Hooks(f Fault, cfg *emu.Config) {
	ti := uint64(f.TraceIndex)
	reg, bit := f.Reg, uint(f.Bit)
	cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
		if m.Steps-1 == ti {
			m.FlipRegBit(reg, bit)
		}
		return emu.ActContinue
	}, ti, ti+1)
}

// EffectEnd implements EffectHorizon: the register is flipped during
// step TraceIndex and the hook never fires again.
func (RegFlipSpec) EffectEnd(f Fault) uint64 { return uint64(f.TraceIndex) + 1 }

// regTarget is one faultable register of an instruction, with the
// number of low bits worth flipping (the width the instruction reads).
type regTarget struct {
	reg  isa.Reg
	bits int
}

// writeOnlyDst lists ops whose destination register is written without
// being read first — flipping it pre-execution would be a no-op.
var writeOnlyDst = map[isa.Op]bool{
	isa.MOV: true, isa.MOVZX: true, isa.MOVSX: true, isa.LEA: true,
	isa.SETCC: true, isa.POP: true,
}

// readRegs returns the registers an instruction reads, in hardware
// register order, each with its read width in bits. Address registers
// (memory base/index, the implicit stack pointer) always count all 64
// bits — a high-bit flip sends the access somewhere else entirely.
func readRegs(in *isa.Inst) []regTarget {
	bits := [isa.NumRegs]int{}
	note := func(r isa.Reg, b int) {
		if r.Valid() && b > bits[r] {
			bits[r] = b
		}
	}
	operand := func(op *isa.Operand, read bool) {
		switch op.Kind {
		case isa.KindReg:
			if read {
				note(op.Reg, int(op.Width)*8)
			}
		case isa.KindMem:
			note(op.Mem.Base, 64)
			note(op.Mem.Index, 64)
		}
	}
	operand(&in.Dst, !writeOnlyDst[in.Op])
	operand(&in.Src, true)
	switch in.Op {
	case isa.SYSCALL:
		// The emulated syscall surface (read/write/exit) dispatches on
		// RAX and consumes RDI/RSI/RDX.
		for _, r := range []isa.Reg{isa.RAX, isa.RDX, isa.RSI, isa.RDI} {
			note(r, 64)
		}
	case isa.PUSH, isa.POP, isa.CALL, isa.RET, isa.PUSHFQ, isa.POPFQ:
		note(isa.RSP, 64)
	}
	var out []regTarget
	for r := 0; r < isa.NumRegs; r++ {
		if bits[r] > 0 {
			out = append(out, regTarget{reg: isa.Reg(r), bits: bits[r]})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Multi-instruction skip (beyond the paper; cf. Boespflug et al.).
// ---------------------------------------------------------------------

// MultiSkipSpec skips a window of consecutive instructions — the wide
// glitch that defeats naive duplication countermeasures (skipping an
// instruction and its duplicate together).
type MultiSkipSpec struct {
	MinWindow, MaxWindow int // window sizes enumerated, inclusive
}

// Model implements ModelSpec.
func (MultiSkipSpec) Model() Model { return ModelMultiSkip }

// Name implements ModelSpec.
func (MultiSkipSpec) Name() string { return "multi-instruction-skip" }

// NeedsInsts implements ModelSpec.
func (MultiSkipSpec) NeedsInsts() bool { return false }

// Enumerate implements ModelSpec: every trace offset × every window
// size that fits in the remaining trace.
func (s MultiSkipSpec) Enumerate(ctx *EnumContext, emit func(Fault)) {
	for i, e := range ctx.Trace.Entries {
		for w := s.MinWindow; w <= s.MaxWindow; w++ {
			if i+w > len(ctx.Trace.Entries) {
				break
			}
			if ctx.Mark(e.Addr, w) {
				emit(Fault{
					Model: ModelMultiSkip, TraceIndex: i,
					Addr: e.Addr, Op: e.Op, Cond: e.Cond,
					Window: w,
				})
			}
		}
	}
}

// Hooks implements ModelSpec. The window is counted in executed steps,
// so it stays contiguous even when a skipped instruction would have
// branched: the fall-through successors are skipped instead, exactly as
// a sustained glitch behaves on hardware.
func (MultiSkipSpec) Hooks(f Fault, cfg *emu.Config) {
	start := uint64(f.TraceIndex)
	end := start + uint64(f.Window)
	cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
		if s := m.Steps - 1; s >= start && s < end {
			return emu.ActSkip
		}
		return emu.ActContinue
	}, start, end)
}

// EffectEnd implements EffectHorizon: the glitch sustains through the
// whole skip window, ending after step TraceIndex+Window-1.
func (MultiSkipSpec) EffectEnd(f Fault) uint64 {
	return uint64(f.TraceIndex) + uint64(f.Window)
}

// ---------------------------------------------------------------------
// Transient data flip (beyond the paper).
// ---------------------------------------------------------------------

// DataFlipSpec flips one bit of the memory cell a traced instruction's
// memory operand resolves to, immediately before the access — a glitch
// on the data bus rather than the instruction stream. The flip lands in
// the cell itself (persistently, like a disturbed DRAM row); "transient"
// refers to the one-shot injection, not a stuck-at fault.
//
// Only cells the instruction *reads* are fault sites: LEA computes an
// address without touching memory, and a pure store (mov [mem], x)
// overwrites the cell before the flipped value could ever be observed,
// so faulting either would only simulate guaranteed no-ops.
type DataFlipSpec struct{}

// dataFaultOperand returns the memory operand whose cell a data fault
// can perturb — the one the instruction reads — or nil when the
// instruction touches no memory or only writes it.
func dataFaultOperand(in *isa.Inst) *isa.Operand {
	if in.Op == isa.LEA {
		return nil
	}
	mem := in.MemOperand()
	if mem == nil {
		return nil
	}
	if mem == &in.Dst && writeOnlyDst[in.Op] {
		return nil
	}
	return mem
}

// Model implements ModelSpec.
func (DataFlipSpec) Model() Model { return ModelDataFlip }

// Name implements ModelSpec.
func (DataFlipSpec) Name() string { return "data-bit-flip" }

// NeedsInsts implements ModelSpec.
func (DataFlipSpec) NeedsInsts() bool { return true }

// Enumerate implements ModelSpec: each traced memory read × each bit
// of the accessed width.
func (DataFlipSpec) Enumerate(ctx *EnumContext, emit func(Fault)) {
	for i, e := range ctx.Trace.Entries {
		in := ctx.Inst(e.Addr)
		if in == nil {
			continue
		}
		mem := dataFaultOperand(in)
		if mem == nil {
			continue
		}
		for bit := 0; bit < int(mem.Width)*8; bit++ {
			if ctx.Mark(e.Addr, bit) {
				emit(Fault{
					Model: ModelDataFlip, TraceIndex: i,
					Addr: e.Addr, Op: e.Op, Cond: e.Cond,
					Bit: bit,
				})
			}
		}
	}
}

// Hooks implements ModelSpec. The effective address is resolved in the
// faulted run's own state at injection time; if execution diverged
// (order-2 runs) and the instruction at the fault step has no memory
// operand, there is no access to disturb and the glitch fizzles.
func (DataFlipSpec) Hooks(f Fault, cfg *emu.Config) {
	ti := uint64(f.TraceIndex)
	byteOff := uint64(f.Bit / 8)
	bit := uint(f.Bit % 8)
	cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
		if m.Steps-1 == ti {
			if mem := dataFaultOperand(in); mem != nil {
				_ = m.Mem.FlipDataBit(m.OperandAddr(in, mem)+byteOff, bit)
			}
		}
		return emu.ActContinue
	}, ti, ti+1)
}

// EffectEnd implements EffectHorizon: the cell is disturbed during step
// TraceIndex; whatever it changed is machine state from then on.
func (DataFlipSpec) EffectEnd(f Fault) uint64 { return uint64(f.TraceIndex) + 1 }
