package fault

import (
	"errors"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// miniPincheck is the canonical vulnerable program: reads 8 bytes and
// compares them against a stored pin; grants on match.
const miniPincheck = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

var (
	goodPin = []byte("1234ABCD")
	badPin  = []byte("00000000")
)

func buildMini(t *testing.T) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(miniPincheck, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestSkipCampaignFindsBranchVuln(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildMini(t),
		Good:   goodPin,
		Bad:    badPin,
		Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoodOracle.Stdout != "GRANTED\n" || rep.BadOracle.Stdout != "DENIED\n" {
		t.Fatalf("oracles wrong: %+v / %+v", rep.GoodOracle, rep.BadOracle)
	}
	succ := rep.Successful()
	if len(succ) == 0 {
		t.Fatal("skip campaign found no vulnerabilities in unprotected pincheck")
	}
	// The jne must be among them: skipping it falls through to grant.
	foundJcc := false
	for _, inj := range succ {
		if inj.Fault.Op == isa.JCC {
			foundJcc = true
		}
	}
	if !foundJcc {
		t.Errorf("jne skip not flagged; successes: %v", succ)
	}
}

func TestBitflipCampaignFindsCondInversion(t *testing.T) {
	rep, err := Run(Campaign{
		Binary: buildMini(t),
		Good:   goodPin,
		Bad:    badPin,
		Models: []Model{ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	succ := rep.Successful()
	if len(succ) == 0 {
		t.Fatal("bitflip campaign found no vulnerabilities")
	}
	// Flipping the low condition bit of jne (0F 85 -> 0F 84, je) must
	// grant access on the bad input.
	foundInversion := false
	for _, inj := range succ {
		if inj.Fault.Op == isa.JCC {
			foundInversion = true
		}
	}
	if !foundInversion {
		t.Errorf("jcc condition inversion not among successes: %v", succ)
	}
	// Sanity: campaign must also observe crashes (invalid re-decodes).
	if rep.Count(OutcomeCrash) == 0 {
		t.Error("no crashes in a bitflip campaign — decoder is suspiciously permissive")
	}
}

func TestAllVulnSitesInConditionalJumpCluster(t *testing.T) {
	// Paper §V-C: "All of these vulnerabilities were caused by the
	// conditional jumps (mov, cmp, and jmp instructions related to a
	// jump operation)".
	rep, err := Run(Campaign{
		Binary: buildMini(t),
		Good:   goodPin,
		Bad:    badPin,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.VulnerableSites() {
		if c := Classify(s.Op); c == ClassOther {
			t.Errorf("vulnerable site %#x (%s) outside the mov/cmp/branch cluster", s.Addr, s.Mnemonic)
		}
	}
}

func TestOracleIndistinguishable(t *testing.T) {
	src := `
.text
_start:
	mov rax, 60
	mov rdi, 0
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Campaign{Binary: bin, Good: []byte("a"), Bad: []byte("b")})
	if !errors.Is(err, ErrOracle) {
		t.Errorf("err = %v, want ErrOracle", err)
	}
}

func TestDetectedOutcome(t *testing.T) {
	// Skipping the "jmp real_deny" lands in an exit-42 handler; the
	// campaign must classify that as detected, not success or crash.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	cmp rax, [rip+pin]
	jne deny
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	jmp real_deny
handler:
	mov rax, 60
	mov rdi, 42
	syscall
real_deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Campaign{
		Binary: bin,
		Good:   goodPin,
		Bad:    badPin,
		Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(OutcomeDetected) == 0 {
		t.Error("no detected outcomes; exit-42 handler not recognized")
	}
}

func TestDedupSites(t *testing.T) {
	// A loop executes the same instructions many times; site dedup must
	// shrink the fault list while keeping static coverage.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rcx, 10
	xor rbx, rbx
loop:
	add rbx, rcx
	dec rcx
	jne loop
	mov rax, [rip+buf]
	cmp rax, [rip+pin]
	jne deny
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
.bss
buf: .zero 8
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Campaign{Binary: bin, Good: goodPin, Bad: badPin, Models: []Model{ModelSkip}})
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := Run(Campaign{Binary: bin, Good: goodPin, Bad: badPin, Models: []Model{ModelSkip}, DedupSites: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup.Injections) >= len(full.Injections) {
		t.Errorf("dedup=%d not smaller than full=%d", len(dedup.Injections), len(full.Injections))
	}
	if len(dedup.Injections) != len(full.Trace.Sites()) {
		t.Errorf("dedup skip injections = %d, want one per unique site %d",
			len(dedup.Injections), len(full.Trace.Sites()))
	}
}

func TestMaxFaults(t *testing.T) {
	rep, err := Run(Campaign{
		Binary:    buildMini(t),
		Good:      goodPin,
		Bad:       badPin,
		Models:    []Model{ModelBitFlip},
		MaxFaults: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Injections) != 10 {
		t.Errorf("injections = %d, want 10", len(rep.Injections))
	}
}

func TestTransientVsPersistentBitflip(t *testing.T) {
	// Both modes must run cleanly; persistent flips can differ in
	// effect when the flipped instruction is revisited.
	for _, transient := range []bool{false, true} {
		rep, err := Run(Campaign{
			Binary:    buildMini(t),
			Good:      goodPin,
			Bad:       badPin,
			Models:    []Model{ModelBitFlip},
			Transient: transient,
		})
		if err != nil {
			t.Fatalf("transient=%v: %v", transient, err)
		}
		if len(rep.Injections) == 0 {
			t.Fatalf("transient=%v: no injections", transient)
		}
	}
}

func TestVulnerableSitesSortedAndCounted(t *testing.T) {
	rep, err := Run(Campaign{Binary: buildMini(t), Good: goodPin, Bad: badPin})
	if err != nil {
		t.Fatal(err)
	}
	sites := rep.VulnerableSites()
	for i := 1; i < len(sites); i++ {
		if sites[i-1].Addr >= sites[i].Addr {
			t.Error("sites not sorted by address")
		}
	}
	total := 0
	for _, s := range sites {
		if s.Count <= 0 {
			t.Errorf("site %#x has count %d", s.Addr, s.Count)
		}
		total += s.Count
	}
	if total != len(rep.Successful()) {
		t.Errorf("site counts sum %d != successful %d", total, len(rep.Successful()))
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		op   isa.Op
		want VulnClass
	}{
		{isa.MOV, ClassMov}, {isa.LEA, ClassMov}, {isa.MOVZX, ClassMov},
		{isa.CMP, ClassCmp}, {isa.TEST, ClassCmp},
		{isa.JCC, ClassBranch}, {isa.JMP, ClassBranch},
		{isa.ADD, ClassOther}, {isa.SYSCALL, ClassOther},
	}
	for _, tt := range tests {
		if got := Classify(tt.op); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestModelAndOutcomeStrings(t *testing.T) {
	if ModelSkip.String() == "?" || ModelBitFlip.String() == "?" {
		t.Error("model strings missing")
	}
	for _, o := range []Outcome{OutcomeIgnored, OutcomeSuccess, OutcomeCrash, OutcomeDetected} {
		if o.String() == "?" {
			t.Errorf("outcome %d has no string", o)
		}
	}
	f := Fault{Model: ModelBitFlip, TraceIndex: 3, Addr: 0x401000, Op: isa.CMP, Bit: 5}
	if f.String() == "" {
		t.Error("fault string empty")
	}
}
