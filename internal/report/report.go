// Package report renders experiment results as aligned text tables with
// paper-vs-measured columns, shared by the benchmark harness and the
// CLI's `experiments` command.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Int renders an integer cell.
func Int(n int) string { return fmt.Sprintf("%d", n) }

// Ratio formats a before/after pair.
func Ratio(before, after int) string { return fmt.Sprintf("%d -> %d", before, after) }

// MixString renders an instruction mix like Table IV's cells
// ("1 cmp, 2 zext, ...") in a stable order given by keys.
func MixString(mix map[string]int, keys []string) string {
	var parts []string
	seen := map[string]bool{}
	for _, k := range keys {
		if n := mix[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k))
			seen[k] = true
		}
	}
	// Remaining keys alphabetically-stable by first appearance order of
	// the map is not deterministic; only include leftovers sorted.
	var rest []string
	for k, n := range mix {
		if !seen[k] && n > 0 {
			rest = append(rest, fmt.Sprintf("%d %s", n, k))
		}
	}
	sortStrings(rest)
	parts = append(parts, rest...)
	return strings.Join(parts, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MixDelta subtracts mixes (after - before), dropping zeros.
func MixDelta(before, after map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range before {
		if _, ok := after[k]; !ok {
			out[k] = -v
		}
	}
	return out
}
