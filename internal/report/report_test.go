package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "Table V: overhead",
		Header: []string{"case", "paper", "measured"},
	}
	tab.AddRow("pincheck", "17.61%", "21.30%")
	tab.AddRow("bootloader", "19.67%", "18.02%")
	tab.AddNote("shape holds: F+P well below Hybrid")
	s := tab.String()
	for _, want := range []string{"Table V", "case", "pincheck", "21.30%", "note: shape holds"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Alignment: header and rows share column offsets.
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(lines[1], "case") {
		t.Errorf("header line = %q", lines[1])
	}
	if strings.Index(lines[1], "paper") != strings.Index(lines[3], "17.61%") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestPctRatio(t *testing.T) {
	if Pct(85.875) != "85.88%" && Pct(85.875) != "85.87%" {
		t.Errorf("Pct = %q", Pct(85.875))
	}
	if Ratio(6, 3) != "6 -> 3" {
		t.Errorf("Ratio = %q", Ratio(6, 3))
	}
}

func TestMixString(t *testing.T) {
	mix := map[string]int{"cmp": 1, "zext": 2, "and": 4, "br": 1}
	s := MixString(mix, []string{"cmp", "zext", "and", "br"})
	if s != "1 cmp, 2 zext, 4 and, 1 br" {
		t.Errorf("MixString = %q", s)
	}
	// Leftover keys appear sorted at the end.
	mix["xor"] = 6
	mix["or"] = 2
	s = MixString(mix, []string{"cmp"})
	if !strings.HasPrefix(s, "1 cmp, ") || !strings.Contains(s, "6 xor") {
		t.Errorf("MixString leftovers = %q", s)
	}
}

func TestMixDelta(t *testing.T) {
	before := map[string]int{"cmp": 1, "br": 1, "mov": 3}
	after := map[string]int{"cmp": 2, "br": 1, "mov": 1, "zext": 2}
	d := MixDelta(before, after)
	if d["cmp"] != 1 || d["zext"] != 2 || d["mov"] != -2 {
		t.Errorf("delta = %v", d)
	}
	if _, ok := d["br"]; ok {
		t.Error("zero delta retained")
	}
}
