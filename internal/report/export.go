package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// WriteCSV renders the table as RFC-4180 CSV: one header record, one
// record per row. Title and notes are presentation-only and omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON marshals any value as indented JSON followed by a newline —
// the shared encoder for machine-readable campaign/experiment output.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
