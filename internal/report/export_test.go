package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestWriteCSVRoundTrip: the CSV export parses back to exactly the
// header and rows, with title and notes omitted.
func TestWriteCSVRoundTrip(t *testing.T) {
	tab := &Table{
		Title:  "campaign results",
		Header: []string{"name", "injections", "success"},
	}
	tab.AddRow("pincheck", "1139", "6")
	tab.AddRow("bootloader", "5120", "0")
	tab.AddNote("presentation only — must not appear in CSV")

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV invalid: %v", err)
	}
	want := [][]string{
		{"name", "injections", "success"},
		{"pincheck", "1139", "6"},
		{"bootloader", "5120", "0"},
	}
	if !reflect.DeepEqual(records, want) {
		t.Errorf("CSV round-trip = %v, want %v", records, want)
	}
}

// TestWriteCSVQuoting: cells containing commas and quotes survive the
// round trip (summary cells carry instruction mixes like "1 cmp, 2 br").
func TestWriteCSVQuoting(t *testing.T) {
	tab := &Table{
		Header: []string{"name", "mix"},
	}
	tab.AddRow("one-branch", `1 cmp, 1 "jx", 2 mov`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV invalid: %v", err)
	}
	if records[1][1] != `1 cmp, 1 "jx", 2 mov` {
		t.Errorf("quoted cell = %q", records[1][1])
	}
}

// TestWriteJSON: the shared JSON encoder emits indented output ending
// in a newline and round-trips structured values.
func TestWriteJSON(t *testing.T) {
	type row struct {
		Name    string `json:"name"`
		Success int    `json:"success"`
	}
	in := []row{{"pincheck", 6}, {"bootloader", 0}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasSuffix(s, "\n") {
		t.Error("JSON output not newline-terminated")
	}
	if !strings.Contains(s, "\n  ") {
		t.Error("JSON output not indented")
	}
	var back []row
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, in) {
		t.Errorf("JSON round-trip = %v, want %v", back, in)
	}
}
