package cases

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/emu"
)

func TestCorpusOracles(t *testing.T) {
	for _, c := range Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			bin, err := c.Build()
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if err := c.Check(bin); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCatalogNamesAndLookup(t *testing.T) {
	names := Names()
	want := []string{"pincheck", "bootloader", "otpauth", "fwupdate", "crtsign"}
	if len(names) != len(want) {
		t.Fatalf("catalog has %d cases, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("catalog[%d] = %q, want %q", i, names[i], n)
		}
		c, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != n {
			t.Errorf("Get(%q) built case named %q", n, c.Name)
		}
	}
	if _, err := Get("nonesuch"); err == nil || !strings.Contains(err.Error(), "pincheck") {
		t.Errorf("unknown case error should spell out the catalog, got %v", err)
	}
}

func TestParseCases(t *testing.T) {
	all, err := ParseCases("all")
	if err != nil || len(all) != len(Names()) {
		t.Fatalf("ParseCases(all) = %d cases, err %v", len(all), err)
	}
	if def, err := ParseCases(""); err != nil || len(def) != len(all) {
		t.Fatalf("empty spec should mean all, got %d cases, err %v", len(def), err)
	}
	two, err := ParseCases("otpauth, pincheck")
	if err != nil || len(two) != 2 || two[0].Name != "otpauth" || two[1].Name != "pincheck" {
		t.Fatalf("ParseCases(otpauth, pincheck) = %v, err %v", two, err)
	}
	dup, err := ParseCases("pincheck,pincheck,all")
	if err != nil || len(dup) != len(all) || dup[0].Name != "pincheck" {
		t.Fatalf("duplicates must collapse: %v, err %v", dup, err)
	}
	if _, err := ParseCases("pincheck,bogus"); err == nil {
		t.Error("unknown case in list must fail")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for duplicate registration")
		}
	}()
	Register("pincheck", Pincheck)
}

// TestOTPAuthBurnsRetry: feeding the authenticator wrong codes
// repeatedly must walk the retry counter down to lockout — the .data
// counter really is read-modify-write state, not decoration.
func TestOTPAuthBurnsRetry(t *testing.T) {
	c := OTPAuth()
	bin := c.MustBuild()
	// One run burns one retry; re-running a fresh machine resets .data,
	// so simulate the walk-down by feeding one machine multiple codes
	// is not possible with this harness — instead check both paths: a
	// wrong code says OTP BAD (retries left), and the MAC reference
	// matches the assembly.
	res, err := emu.New(bin, emu.Config{Stdin: c.Bad}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Stdout), "OTP BAD") || res.ExitCode != 1 {
		t.Errorf("wrong code: (%q, %d)", res.Stdout, res.ExitCode)
	}
	if RollingMAC(c.Good) == RollingMAC(c.Bad) {
		t.Error("MAC collision between fixtures")
	}
}

// TestFWUpdateFixtures: both images are authentic (valid digest); only
// the version separates them, and tampering with the rollback image's
// payload or trailer must be rejected as a bad image, not a rollback.
func TestFWUpdateFixtures(t *testing.T) {
	good, bad := GoodUpdateImage(), RollbackUpdateImage()
	if len(good) != UpdateImageSize || len(bad) != UpdateImageSize {
		t.Fatal("image sizes wrong")
	}
	if good[updateVersionOff] < MinUpdateVersion || bad[updateVersionOff] >= MinUpdateVersion {
		t.Fatal("fixture versions on the wrong side of the floor")
	}
	bin := FWUpdate().MustBuild()

	tampered := GoodUpdateImage()
	tampered[20] ^= 0x04
	res, err := emu.New(bin, emu.Config{Stdin: tampered}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Stdout), "bad image") || res.ExitCode != 1 {
		t.Errorf("tampered image: (%q, %d)", res.Stdout, res.ExitCode)
	}

	short := GoodUpdateImage()[:30]
	res, err = emu.New(bin, emu.Config{Stdin: short}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("short image: exit %d, want 1", res.ExitCode)
	}
}

// TestCRTSignReference: the toy RSA really is a permutation
// (sign-then-verify recovers every residue), and the assembly's
// signature agrees with the Go reference for both fixtures.
func TestCRTSignReference(t *testing.T) {
	for m := uint64(0); m < crtModulus; m++ {
		s := modPow(m, crtPrivateExp, crtModulus)
		if modPow(s, crtPublicExp, crtModulus) != m {
			t.Fatalf("m=%d: verify does not recover the message", m)
		}
	}
	c := CRTSign()
	if crtFold(c.Good) == crtFold(c.Bad) {
		t.Fatal("fixtures fold to the same residue")
	}
	if SignMessage(c.Good) == SignMessage(c.Bad) {
		t.Fatal("fixture signatures collide")
	}
	// The good oracle passing (TestCorpusOracles) proves the assembly
	// signature equals SignMessage(good); also check a wrong message is
	// rejected without tripping the self-check.
	bin := c.MustBuild()
	res, err := emu.New(bin, emu.Config{Stdin: []byte("WRONGMSG")}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 42 {
		t.Error("unfaulted run tripped the sign-fault self-check")
	}
	if string(res.Stdout) != "REJECTED\n" || res.ExitCode != 1 {
		t.Errorf("wrong message: (%q, %d)", res.Stdout, res.ExitCode)
	}
}
