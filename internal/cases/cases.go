// Package cases provides the paper's two case-study programs (§V-C):
//
//   - pincheck: reads a PIN from stdin, compares it against the stored
//     secret, and either grants access (running a "sensitive operation",
//     here: revealing a secret) or denies it;
//   - secure bootloader: reads a firmware image from stdin, hashes it
//     (FNV-1a 64, standing in for the paper's unspecified hash), compares
//     the digest against the expected value burned into the image, and
//     either boots or refuses.
//
// Both are written in this repository's assembler dialect and carry
// their good/bad input oracles, so every pipeline stage (faulter,
// patcher, hybrid) can validate hardened binaries against the same
// contract.
//
// Beyond the paper's pair, the corpus case studies (otpauth, fwupdate,
// crtsign — see corpus.go) extend the evaluation to more scenarios;
// every case registers in the catalog (catalog.go), and Corpus()
// returns the full set in registration order.
package cases

import (
	"fmt"
	"hash/fnv"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
)

// Case is a buildable case study with its behavioural oracle.
type Case struct {
	Name   string
	Source string

	Good []byte // accepted input
	Bad  []byte // rejected input

	GoodStdout string
	BadStdout  string
	GoodExit   int
	BadExit    int
}

// Build assembles the case study.
func (c *Case) Build() (*elf.Binary, error) {
	return asm.Assemble(c.Source, nil)
}

// MustBuild assembles or panics (the sources are compile-time constants).
func (c *Case) MustBuild() *elf.Binary {
	bin, err := c.Build()
	if err != nil {
		panic("cases: " + c.Name + ": " + err.Error())
	}
	return bin
}

// Check runs the binary against both oracles; any hardened or rewritten
// variant of the case study must still pass.
func (c *Case) Check(bin *elf.Binary) error {
	checks := []struct {
		in   []byte
		out  string
		code int
	}{
		{c.Good, c.GoodStdout, c.GoodExit},
		{c.Bad, c.BadStdout, c.BadExit},
	}
	for _, tc := range checks {
		res, err := emu.New(bin, emu.Config{Stdin: tc.in, StepLimit: 32 << 20}).Run()
		if err != nil {
			return fmt.Errorf("cases: %s: input %q crashed: %w", c.Name, tc.in, err)
		}
		if string(res.Stdout) != tc.out || res.ExitCode != tc.code {
			return fmt.Errorf("cases: %s: input %q: got (%q, %d), want (%q, %d)",
				c.Name, tc.in, res.Stdout, res.ExitCode, tc.out, tc.code)
		}
	}
	return nil
}

// Pincheck returns the pin-checker case study with the default secret.
func Pincheck() *Case { return PincheckWith("7391-ACD") }

// PincheckWith builds a pincheck variant with a custom 8-byte PIN
// (property tests randomize it).
func PincheckWith(pin string) *Case {
	if len(pin) != 8 {
		panic("cases: pin must be exactly 8 bytes")
	}
	bad := []byte("00000000")
	if string(bad) == pin {
		bad = []byte("11111111")
	}
	src := fmt.Sprintf(`
; pincheck — reads an 8-byte PIN and guards a sensitive operation.
.text
.global _start
_start:
	mov rax, 0                 ; read(0, pin_buf, 8)
	mov rdi, 0
	lea rsi, [rip+pin_buf]
	mov rdx, 8
	syscall
	cmp rax, 8                 ; short read is an immediate denial
	jne deny
	mov rax, [rip+pin_buf]     ; attacker-controlled PIN
	mov rbx, [rip+secret_pin]  ; reference PIN
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1                 ; write(1, msg_granted, ...)
	mov rdi, 1
	lea rsi, [rip+msg_granted]
	mov rdx, msg_granted_len
	syscall
	mov rax, 1                 ; the sensitive operation: reveal secret
	mov rdi, 1
	lea rsi, [rip+msg_secret]
	mov rdx, msg_secret_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_denied]
	mov rdx, msg_denied_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
secret_pin:  .ascii "%s"
msg_granted: .ascii "ACCESS GRANTED\n"
.equ msg_granted_len, . - msg_granted
msg_secret:  .ascii "launch code: 1202\n"
.equ msg_secret_len, . - msg_secret
msg_denied:  .ascii "ACCESS DENIED\n"
.equ msg_denied_len, . - msg_denied
.bss
pin_buf: .zero 8
`, pin)
	return &Case{
		Name:       "pincheck",
		Source:     src,
		Good:       []byte(pin),
		Bad:        bad,
		GoodStdout: "ACCESS GRANTED\nlaunch code: 1202\n",
		BadStdout:  "ACCESS DENIED\n",
		GoodExit:   0,
		BadExit:    1,
	}
}

// FirmwareSize is the bootloader's image size.
const FirmwareSize = 64

// GoodFirmware is the release image the bootloader accepts.
func GoodFirmware() []byte {
	fw := make([]byte, FirmwareSize)
	copy(fw, "RELEASE-FW v4.2 ")
	for i := 16; i < FirmwareSize; i++ {
		fw[i] = byte(0x40 + i*7%26) // deterministic filler "code"
	}
	return fw
}

// BadFirmware is a tampered image (one payload byte patched).
func BadFirmware() []byte {
	fw := GoodFirmware()
	fw[40] ^= 0x01
	return fw
}

// FNV1a64 is the digest the bootloader computes (stdlib reference
// implementation; the assembly below re-implements it).
func FNV1a64(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Bootloader returns the secure-bootloader case study: hash-verified
// firmware loading (paper §V-C: "the hash of the content of a memory
// location is calculated and compared with an expected hash value").
func Bootloader() *Case {
	expected := FNV1a64(GoodFirmware())
	src := fmt.Sprintf(`
; secure bootloader — verifies firmware by hash before launching it.
.text
.global _start
_start:
	mov rax, 0                 ; read(0, fw_buf, FW_SIZE) — "flash load"
	mov rdi, 0
	lea rsi, [rip+fw_buf]
	mov rdx, %d
	syscall
	cmp rax, %d                ; incomplete image -> refuse
	jne fail
	; FNV-1a 64 over the image
%s
	cmp rax, [rip+expected_hash]
	jne fail
boot:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_ok]
	mov rdx, msg_ok_len
	syscall
	mov rax, 1                 ; the privileged action: jump to firmware
	mov rdi, 1
	lea rsi, [rip+msg_launch]
	mov rdx, msg_launch_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
fail:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_bad]
	mov rdx, msg_bad_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
expected_hash: .quad %d
msg_ok:     .ascii "BOOT OK\n"
.equ msg_ok_len, . - msg_ok
msg_launch: .ascii "launching firmware\n"
.equ msg_launch_len, . - msg_launch
msg_bad:    .ascii "BOOT FAIL: bad firmware hash\n"
.equ msg_bad_len, . - msg_bad
.bss
fw_buf: .zero %d
`, FirmwareSize, FirmwareSize,
		fnvLoop(0xcbf29ce484222325, "fw_buf", FirmwareSize, "hash_loop"),
		int64(expected), FirmwareSize)
	return &Case{
		Name:       "bootloader",
		Source:     src,
		Good:       GoodFirmware(),
		Bad:        BadFirmware(),
		GoodStdout: "BOOT OK\nlaunching firmware\n",
		BadStdout:  "BOOT FAIL: bad firmware hash\n",
		GoodExit:   0,
		BadExit:    1,
	}
}

// All returns the paper's two case studies (§V-C). The full registered
// corpus — these two plus the beyond-the-paper cases — is Corpus().
func All() []*Case {
	return []*Case{Pincheck(), Bootloader()}
}
