package cases

import (
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/emu"
)

func TestPincheckOracle(t *testing.T) {
	c := Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(bin); err != nil {
		t.Fatal(err)
	}
}

func TestBootloaderOracle(t *testing.T) {
	c := Bootloader()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(bin); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsWrongBehaviour(t *testing.T) {
	// The pincheck binary does not satisfy the bootloader oracle.
	pin := Pincheck().MustBuild()
	if err := Bootloader().Check(pin); err == nil {
		t.Error("oracle accepted the wrong program")
	}
}

func TestPincheckShortInput(t *testing.T) {
	bin := Pincheck().MustBuild()
	res, err := emu.New(bin, emu.Config{Stdin: []byte("123")}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 || !strings.Contains(string(res.Stdout), "DENIED") {
		t.Errorf("short input: (%q, %d)", res.Stdout, res.ExitCode)
	}
}

func TestPincheckRandomPins(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	alphabet := "ABCDEFGHJKMNPQRSTUVWXYZ23456789-"
	for i := 0; i < 10; i++ {
		pin := make([]byte, 8)
		for j := range pin {
			pin[j] = alphabet[r.Intn(len(alphabet))]
		}
		c := PincheckWith(string(pin))
		bin, err := c.Build()
		if err != nil {
			t.Fatalf("pin %q: %v", pin, err)
		}
		if err := c.Check(bin); err != nil {
			t.Fatalf("pin %q: %v", pin, err)
		}
		// A wrong guess (off by one byte) must be denied.
		guess := append([]byte(nil), pin...)
		guess[r.Intn(8)] ^= 0x01
		res, err := emu.New(bin, emu.Config{Stdin: guess}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 1 {
			t.Errorf("pin %q guess %q accepted", pin, guess)
		}
	}
}

func TestFNVMatchesStdlib(t *testing.T) {
	data := []byte("the quick brown fox")
	h := fnv.New64a()
	h.Write(data)
	if FNV1a64(data) != h.Sum64() {
		t.Error("FNV1a64 diverges from stdlib")
	}
}

// TestBootloaderHashInAsmMatchesGo: the assembly FNV loop must compute
// exactly the Go reference value — tested by feeding a firmware whose
// only difference is the embedded expected hash.
func TestBootloaderHashInAsmMatchesGo(t *testing.T) {
	// Accepting the good firmware proves the asm hash equals
	// FNV1a64(GoodFirmware()); also check single-bit tampering of every
	// byte region is rejected.
	c := Bootloader()
	bin := c.MustBuild()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		fw := GoodFirmware()
		fw[r.Intn(len(fw))] ^= byte(1 << r.Intn(8))
		res, err := emu.New(bin, emu.Config{Stdin: fw}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 1 {
			t.Errorf("tampered firmware accepted (trial %d)", i)
		}
	}
}

func TestBootloaderShortImage(t *testing.T) {
	bin := Bootloader().MustBuild()
	res, err := emu.New(bin, emu.Config{Stdin: GoodFirmware()[:10]}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("short image: exit %d, want 1", res.ExitCode)
	}
}

func TestFirmwareFixtures(t *testing.T) {
	if len(GoodFirmware()) != FirmwareSize || len(BadFirmware()) != FirmwareSize {
		t.Fatal("firmware sizes wrong")
	}
	if string(GoodFirmware()) == string(BadFirmware()) {
		t.Fatal("good and bad firmware identical")
	}
	if FNV1a64(GoodFirmware()) == FNV1a64(BadFirmware()) {
		t.Fatal("hash collision between fixtures")
	}
}

func TestAll(t *testing.T) {
	cs := All()
	if len(cs) != 2 {
		t.Fatalf("expected 2 case studies, got %d", len(cs))
	}
	for _, c := range cs {
		if err := c.Check(c.MustBuild()); err != nil {
			t.Error(err)
		}
	}
}

func TestPincheckWithPanicsOnBadPin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 3-byte pin")
		}
	}()
	PincheckWith("abc")
}
