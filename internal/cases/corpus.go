// The corpus case studies: three programs beyond the paper's pair,
// growing the evaluation corpus toward the scenario diversity that
// tool-assisted fault-analysis methodologies argue hardening claims
// need (Boespflug et al.; Rauzy & Guilley for the CRT-RSA shape):
//
//   - otpauth: rolling-code MAC verification guarding an unlock, with
//     a retry counter and lockout — the fault surface includes both the
//     MAC compare and the counter bookkeeping around it;
//   - fwupdate: a firmware update that layers an anti-rollback version
//     floor on top of the image hash check, so an authentic-but-old
//     image is the bad input and the version compare is the security
//     boundary;
//   - crtsign: a CRT-RSA-style sign-then-verify stand-in — a toy RSA
//     permutation signs a folded message, re-encrypts the signature to
//     verify it before release (the Bellcore-attack countermeasure),
//     and exits through the detected path when the self-check fails.
//
// Like the paper's cases, each is written in the repository's assembler
// dialect and carries its good/bad input oracle.
package cases

import (
	"encoding/binary"
	"fmt"
)

// fnvLoop is the shared FNV-1a 64 assembly loop over a buffer at
// [rip+%s] of %d bytes, leaving the digest in rax. basis is the
// (possibly keyed) initial state. labels must be unique per use.
func fnvLoop(basis uint64, buf string, n int, label string) string {
	return fmt.Sprintf(`	mov rax, %#x
	mov rsi, 0x100000001b3
	lea rbx, [rip+%s]
	mov rcx, %d
%s:
	movzx rdx, byte ptr [rbx]
	xor rax, rdx
	imul rax, rsi
	inc rbx
	dec rcx
	jne %s`, basis, buf, n, label, label)
}

// ---------------------------------------------------------------------
// otpauth — rolling-code MAC verify with retry counter + lockout.
// ---------------------------------------------------------------------

// otpKeyBasis is the shared secret keying the rolling-code MAC: the
// FNV-1a accumulator starts from it instead of the public offset basis.
const otpKeyBasis uint64 = 0x8e3a5cb1f4d92607

// fnvPrime is the FNV-1a 64 multiplier.
const fnvPrime uint64 = 0x100000001b3

// OTPRetries is the retry budget before the authenticator locks out.
const OTPRetries = 3

// RollingMAC is the keyed MAC the otpauth case verifies (reference
// implementation of its assembly loop).
func RollingMAC(code []byte) uint64 {
	h := otpKeyBasis
	for _, b := range code {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// OTPAuth returns the rolling-code authenticator case study: an 8-byte
// code is MAC'd under a shared key and compared against the expected
// rolling MAC; a valid code resets the retry counter and releases the
// lock, an invalid one burns a retry and locks the authenticator out
// when the budget is exhausted.
func OTPAuth() *Case {
	good := []byte("93517-AZ")
	bad := []byte("00000-00")
	expected := RollingMAC(good)
	src := fmt.Sprintf(`
; otpauth — rolling-code MAC verify with retry counter + lockout.
.text
.global _start
_start:
	mov rax, 0                 ; read(0, code_buf, 8)
	mov rdi, 0
	lea rsi, [rip+code_buf]
	mov rdx, 8
	syscall
	cmp rax, 8                 ; short read burns a retry
	jne reject
	mov rax, [rip+retries]     ; locked out already?
	test rax, rax
	je locked
%s
	cmp rax, [rip+expected_mac]
	jne reject
grant:
	mov rax, %d                ; valid code: reset the retry budget
	mov [rip+retries], rax
	mov rax, 1                 ; write(1, msg_ok, ...)
	mov rdi, 1
	lea rsi, [rip+msg_ok]
	mov rdx, msg_ok_len
	syscall
	mov rax, 1                 ; the sensitive operation: release the lock
	mov rdi, 1
	lea rsi, [rip+msg_open]
	mov rdx, msg_open_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
reject:
	mov rax, [rip+retries]     ; burn one retry, lock out at zero
	test rax, rax
	je locked
	dec rax
	mov [rip+retries], rax
	test rax, rax
	je locked
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_bad]
	mov rdx, msg_bad_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
locked:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_locked]
	mov rdx, msg_locked_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
expected_mac: .quad %d
msg_ok:     .ascii "OTP OK\n"
.equ msg_ok_len, . - msg_ok
msg_open:   .ascii "releasing lock\n"
.equ msg_open_len, . - msg_open
msg_bad:    .ascii "OTP BAD\n"
.equ msg_bad_len, . - msg_bad
msg_locked: .ascii "LOCKED OUT\n"
.equ msg_locked_len, . - msg_locked
.data
retries: .quad %d
.bss
code_buf: .zero 8
`, fnvLoop(otpKeyBasis, "code_buf", 8, "mac_loop"), OTPRetries, int64(expected), OTPRetries)
	return &Case{
		Name:       "otpauth",
		Source:     src,
		Good:       good,
		Bad:        bad,
		GoodStdout: "OTP OK\nreleasing lock\n",
		BadStdout:  "OTP BAD\n",
		GoodExit:   0,
		BadExit:    1,
	}
}

// ---------------------------------------------------------------------
// fwupdate — hash-verified update with an anti-rollback version floor.
// ---------------------------------------------------------------------

// Update image layout: an 8-byte magic, a version byte, payload filler,
// and a trailing FNV-1a 64 digest over everything before it.
const (
	UpdateImageSize  = 64
	updateHashOffset = 56 // digest trailer position; bytes [0,56) are signed
	updateVersionOff = 8

	// MinUpdateVersion is the anti-rollback floor burned into the
	// updater: authentic images below it are refused.
	MinUpdateVersion = 5
)

// UpdateImage builds an authentic update image at the given version:
// correct magic, the version byte, deterministic payload filler, and a
// valid digest trailer. Any version produces an image that passes the
// hash check — only the version floor separates good from bad.
func UpdateImage(version byte) []byte {
	img := make([]byte, UpdateImageSize)
	copy(img, "FWUPDATE")
	img[updateVersionOff] = version
	for i := updateVersionOff + 1; i < updateHashOffset; i++ {
		img[i] = byte(0x30 + i*11%64)
	}
	binary.LittleEndian.PutUint64(img[updateHashOffset:], FNV1a64(img[:updateHashOffset]))
	return img
}

// GoodUpdateImage is the current release: at the version floor.
func GoodUpdateImage() []byte { return UpdateImage(MinUpdateVersion) }

// RollbackUpdateImage is an authentic but outdated image — correct
// digest, version below the floor. The rollback the updater must
// refuse.
func RollbackUpdateImage() []byte { return UpdateImage(MinUpdateVersion - 2) }

// FWUpdate returns the firmware-update case study: the image digest is
// recomputed and checked against the trailer, then the version byte is
// checked against the anti-rollback floor. The bad input is an
// *authentic* rollback image, so the version compare — not the hash —
// is the oracle's security boundary.
func FWUpdate() *Case {
	src := fmt.Sprintf(`
; fwupdate — hash-verified firmware update with anti-rollback floor.
.text
.global _start
_start:
	mov rax, 0                 ; read(0, img_buf, IMG_SIZE)
	mov rdi, 0
	lea rsi, [rip+img_buf]
	mov rdx, %d
	syscall
	cmp rax, %d                ; truncated image -> refuse
	jne fail
%s
	cmp rax, [rip+img_buf+%d]  ; trailer carries the expected digest
	jne fail
	lea rbx, [rip+img_buf]     ; anti-rollback: version >= floor
	movzx rax, byte ptr [rbx+%d]
	cmp rax, [rip+min_version]
	jb rollback
apply:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_ok]
	mov rdx, msg_ok_len
	syscall
	mov rax, 1                 ; the privileged action: flash the image
	mov rdi, 1
	lea rsi, [rip+msg_flash]
	mov rdx, msg_flash_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
rollback:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_rb]
	mov rdx, msg_rb_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
fail:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_bad]
	mov rdx, msg_bad_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
min_version: .quad %d
msg_ok:    .ascii "UPDATE OK\n"
.equ msg_ok_len, . - msg_ok
msg_flash: .ascii "flashing image\n"
.equ msg_flash_len, . - msg_flash
msg_rb:    .ascii "UPDATE REJECTED: rollback\n"
.equ msg_rb_len, . - msg_rb
msg_bad:   .ascii "UPDATE REJECTED: bad image\n"
.equ msg_bad_len, . - msg_bad
.bss
img_buf: .zero %d
`, UpdateImageSize, UpdateImageSize,
		fnvLoop(0xcbf29ce484222325, "img_buf", updateHashOffset, "hash_loop"),
		updateHashOffset, updateVersionOff, MinUpdateVersion, UpdateImageSize)
	return &Case{
		Name:       "fwupdate",
		Source:     src,
		Good:       GoodUpdateImage(),
		Bad:        RollbackUpdateImage(),
		GoodStdout: "UPDATE OK\nflashing image\n",
		BadStdout:  "UPDATE REJECTED: rollback\n",
		GoodExit:   0,
		BadExit:    1,
	}
}

// ---------------------------------------------------------------------
// crtsign — CRT-RSA-style sign-then-verify stand-in (Rauzy & Guilley).
// ---------------------------------------------------------------------

// Toy RSA parameters: n = 3 × 11, e·d ≡ 1 (mod φ(n) = 20). Small enough
// that the assembly's shift-subtract reductions stay cheap, real enough
// that m^(e·d) ≡ m (mod n) holds for every residue.
const (
	crtModulus    = 33
	crtPublicExp  = 3
	crtPrivateExp = 7
)

// crtFold compresses an 8-byte message into a nonzero residue in
// [1, 32] — the "message representative" the toy RSA permutation signs.
func crtFold(msg []byte) uint64 { return FNV1a64(msg)&31 + 1 }

// modPow is the reference square-and-multiply (the assembly inlines the
// fixed exponents 7 and 3 instead of looping over exponent bits).
func modPow(base, exp, n uint64) uint64 {
	r := uint64(1)
	base %= n
	for ; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			r = r * base % n
		}
		base = base * base % n
	}
	return r
}

// SignMessage is the signature the crtsign case computes and releases
// for an authorized message (reference implementation of the assembly).
func SignMessage(msg []byte) uint64 {
	return modPow(crtFold(msg), crtPrivateExp, crtModulus)
}

// crtModMul emits `rax = rax * rbx mod n` as an inline shift-subtract
// reduction (6 steps from n<<5 down to n, enough for any product of two
// reduced residues). label must be unique per expansion.
func crtModMul(label string) string {
	return fmt.Sprintf(`	imul rax, rbx
	mov rdi, %d
	mov rcx, 6
%s_loop:
	cmp rax, rdi
	jb %s_next
	sub rax, rdi
%s_next:
	shr rdi, 1
	dec rcx
	jne %s_loop`, crtModulus<<5, label, label, label, label)
}

// CRTSign returns the sign-then-verify case study: the folded message
// is signed under the toy RSA permutation (s = m^d mod n), the
// signature is verified by re-encryption (s^e mod n must recover m —
// the classic countermeasure against Bellcore-style fault attacks on
// CRT-RSA), and only then compared against the authorized message's
// signature. A failed self-check exits through the detected path, like
// an injected fault handler.
func CRTSign() *Case {
	good := []byte("SIGN-ME!")
	bad := []byte("FORGED!!")
	// The fold is 5 bits; make sure the fixtures do not collide (they do
	// not — checked here so a fixture edit cannot silently break the
	// oracle).
	for _, cand := range [][]byte{bad, []byte("FORGERY!"), []byte("F0RGED!!")} {
		if crtFold(cand) != crtFold(good) {
			bad = cand
			break
		}
	}
	if crtFold(bad) == crtFold(good) {
		panic("cases: crtsign fixtures fold to the same residue")
	}
	expectedSig := SignMessage(good)
	sign := fnvLoop(0xcbf29ce484222325, "msg_buf", 8, "fold_loop") + fmt.Sprintf(`
	and rax, 31
	inc rax                    ; m in [1, 32]
	mov r8, rax                ; m
	mov rbx, rax               ; s = m^7 mod n: square-and-multiply
%s
	mov rbx, r8
%s
	mov rbx, rax
%s
	mov rbx, r8
%s
	mov r9, rax                ; s
	mov rbx, rax               ; verify: s^3 mod n must recover m
%s
	mov rbx, r9
%s`,
		crtModMul("sq1"), // m^2
		crtModMul("mu1"), // m^3
		crtModMul("sq2"), // m^6
		crtModMul("mu2"), // m^7 = s
		crtModMul("vsq"), // s^2
		crtModMul("vmu")) // s^3
	src := fmt.Sprintf(`
; crtsign — toy RSA sign-then-verify (verify-before-release).
.text
.global _start
_start:
	mov rax, 0                 ; read(0, msg_buf, 8)
	mov rdi, 0
	lea rsi, [rip+msg_buf]
	mov rdx, 8
	syscall
	cmp rax, 8                 ; short message -> refuse
	jne reject
%s
	cmp rax, r8                ; self-check: re-encryption must recover m
	jne sigfault
	cmp r9, [rip+expected_sig] ; authorization: signature of the approved message
	jne reject
release:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_ok]
	mov rdx, msg_ok_len
	syscall
	mov rax, 1                 ; the sensitive operation: release the signature
	mov rdi, 1
	lea rsi, [rip+msg_sig]
	mov rdx, msg_sig_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
reject:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_no]
	mov rdx, msg_no_len
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
sigfault:
	mov rax, 1                 ; self-check failed: refuse to release
	mov rdi, 2
	lea rsi, [rip+msg_fault]
	mov rdx, msg_fault_len
	syscall
	mov rax, 60
	mov rdi, 42
	syscall
.rodata
expected_sig: .quad %d
msg_ok:    .ascii "SIGNED\n"
.equ msg_ok_len, . - msg_ok
msg_sig:   .ascii "releasing signature\n"
.equ msg_sig_len, . - msg_sig
msg_no:    .ascii "REJECTED\n"
.equ msg_no_len, . - msg_no
msg_fault: .ascii "SIGN FAULT\n"
.equ msg_fault_len, . - msg_fault
.bss
msg_buf: .zero 8
`, sign, int64(expectedSig))
	return &Case{
		Name:       "crtsign",
		Source:     src,
		Good:       good,
		Bad:        bad,
		GoodStdout: "SIGNED\nreleasing signature\n",
		BadStdout:  "REJECTED\n",
		GoodExit:   0,
		BadExit:    1,
	}
}
