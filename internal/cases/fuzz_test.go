package cases

import "testing"

// FuzzParseCases: any accepted spec yields a non-empty, duplicate-free
// slice of catalog cases, each resolvable back by name to the same
// registered entry.
func FuzzParseCases(f *testing.F) {
	for _, seed := range []string{"", "all", "pincheck", "pincheck,bootloader",
		" pincheck , otpauth ", "all,pincheck", "pincheck,pincheck", ",",
		"nope", "all,nope", "pincheck\n"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cs, err := ParseCases(s)
		if err != nil {
			return
		}
		if len(cs) == 0 {
			t.Fatalf("ParseCases(%q) accepted an empty case list", s)
		}
		seen := map[string]bool{}
		for _, c := range cs {
			if c == nil || c.Name == "" {
				t.Fatalf("ParseCases(%q) yielded a nil or unnamed case", s)
			}
			if seen[c.Name] {
				t.Fatalf("ParseCases(%q) yielded duplicate case %q", s, c.Name)
			}
			seen[c.Name] = true
			// Builders construct per request, so the check is registry
			// membership by name, not pointer identity.
			got, err := Get(c.Name)
			if err != nil || got == nil || got.Name != c.Name {
				t.Fatalf("case %q from ParseCases(%q) is not a registered entry (%v)", c.Name, s, err)
			}
		}
	})
}
