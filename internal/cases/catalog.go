// Catalog: the case-study registry. Like the fault package's ModelSpec
// registry, case studies register a named builder once and every
// consumer — the corpus campaign runner, the CLI's -cases flag, the
// experiments suite — resolves them through one catalog, so adding a
// case study is one Register call, not a tour of the call sites.
package cases

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Builder constructs a registered case study. Builders are called per
// request (cases carry mutable oracle byte slices), so registration
// stores the recipe, not a shared instance.
type Builder func() *Case

var (
	catMu    sync.RWMutex
	catalog  = map[string]Builder{}
	catOrder []string // registration order — the corpus sweep order
)

// Register installs a case-study builder under its name. It panics on a
// duplicate or empty name — registration is an init-time,
// programmer-error surface, exactly like fault.Register.
func Register(name string, b Builder) {
	catMu.Lock()
	defer catMu.Unlock()
	if name == "" || b == nil {
		panic("cases: Register needs a name and a builder")
	}
	if _, dup := catalog[name]; dup {
		panic(fmt.Sprintf("cases: case %q registered twice", name))
	}
	catalog[name] = b
	catOrder = append(catOrder, name)
}

// Names returns every registered case-study name in registration order
// (the deterministic corpus order).
func Names() []string {
	catMu.RLock()
	defer catMu.RUnlock()
	return append([]string(nil), catOrder...)
}

// Lookup resolves a case-study name to its builder.
func Lookup(name string) (Builder, bool) {
	catMu.RLock()
	defer catMu.RUnlock()
	b, ok := catalog[name]
	return b, ok
}

// Get builds the named case study. Unknown names fail with the catalog
// spelled out, so a typo on the command line is self-correcting.
func Get(name string) (*Case, error) {
	b, ok := Lookup(strings.TrimSpace(name))
	if !ok {
		return nil, fmt.Errorf("cases: unknown case study %q (registered: %s; plus the keyword all)",
			name, strings.Join(sortedNames(), ", "))
	}
	return b(), nil
}

// sortedNames renders the catalog alphabetically for error messages.
func sortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// Corpus builds every registered case study, in registration order.
func Corpus() []*Case {
	names := Names()
	out := make([]*Case, 0, len(names))
	for _, name := range names {
		c, err := Get(name)
		if err != nil {
			panic(err) // unreachable: Names() only returns registered cases
		}
		out = append(out, c)
	}
	return out
}

// ParseCases resolves a comma-separated case-study list. The keyword
// "all" expands to the whole catalog; an empty string means "all".
// Duplicates collapse to the first occurrence.
func ParseCases(spec string) ([]*Case, error) {
	if strings.TrimSpace(spec) == "" {
		spec = "all"
	}
	var out []*Case
	seen := map[string]bool{}
	add := func(c *Case) {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		if strings.TrimSpace(part) == "all" {
			for _, c := range Corpus() {
				add(c)
			}
			continue
		}
		c, err := Get(part)
		if err != nil {
			return nil, err
		}
		add(c)
	}
	return out, nil
}

func init() {
	// The paper's pair first (the order All() documents), then the
	// corpus extensions.
	Register("pincheck", Pincheck)
	Register("bootloader", Bootloader)
	Register("otpauth", OTPAuth)
	Register("fwupdate", FWUpdate)
	Register("crtsign", CRTSign)
}
