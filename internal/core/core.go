// Package core holds the experiment kernel shared by the benchmark
// harness, the report generator, and the CLI: the identifiers of every
// reproduced table/figure/claim and the values the paper reports for
// them, so each regeneration site compares against a single source of
// truth.
package core

// Experiment identifies a reproduced artifact of the paper.
type Experiment string

// The paper's evaluation artifacts (see docs/EXPERIMENTS.md).
const (
	TableI     Experiment = "table-1"       // mov protection pattern
	TableII    Experiment = "table-2"       // cmp protection pattern
	TableIII   Experiment = "table-3"       // jcc protection pattern
	TableIV    Experiment = "table-4"       // qualitative branch-hardening overhead
	TableV     Experiment = "table-5"       // code-size overhead per pipeline
	ClaimSkip  Experiment = "claim-skip"    // §V-C: skip faults fully resolved
	ClaimFlip  Experiment = "claim-bitflip" // §V-C: bit-flip points halved
	ClaimClass Experiment = "claim-class"   // §V-C: vulns cluster on mov/cmp/jcc
	ClaimDup   Experiment = "claim-dup"     // §V-C: duplication >= 300% size
	Figure4    Experiment = "figure-4"      // CFG of a plain conditional branch
	Figure5    Experiment = "figure-5"      // CFG of the hardened branch
)

// PaperOverheads is Table V as printed: code-size overhead percentages.
type PaperOverheads struct {
	FaulterPatcher float64
	Hybrid         float64
}

// PaperTableV maps case study name to the paper's Table V row.
var PaperTableV = map[string]PaperOverheads{
	"pincheck":   {FaulterPatcher: 17.61, Hybrid: 85.88},
	"bootloader": {FaulterPatcher: 19.67, Hybrid: 48.67},
}

// PaperDuplicationMinPct is the paper's §V-C lower bound for blanket
// instruction duplication ("implies at least 300% overhead in code
// size").
const PaperDuplicationMinPct = 300.0

// PaperBitflipReduction is the §V-C bit-flip result: vulnerable points
// reduced by 50%.
const PaperBitflipReduction = 0.50

// InstCount is one "N× mnemonic" entry of Table IV.
type InstCount struct {
	N        int
	Mnemonic string
}

// PaperTableIV reproduces Table IV as printed: the instruction mix of
// one conditional branch before and after hardening, at the compiler-IR
// level and lowered to x86-64.
var PaperTableIV = struct {
	IRBefore, IRAfter   []InstCount
	X86Before, X86After []InstCount
}{
	IRBefore: []InstCount{{1, "cmp"}, {1, "br"}},
	IRAfter: []InstCount{
		{1, "cmp"}, {2, "zext"}, {2, "sub"}, {6, "xor"}, {2, "or"},
		{4, "and"}, {1, "br"}, {4, "switch"},
	},
	X86Before: []InstCount{{1, "cmp"}, {1, "jx"}},
	X86After: []InstCount{
		{2, "cmp"}, {6, "mov"}, {2, "sub"}, {6, "xor"}, {2, "or"},
		{6, "and"}, {2, "test"}, {4, "jx"}, {5, "jmp"},
	},
}

// Figure5Shape is the expected CFG census of one hardened branch
// (paper Fig. 5): per outgoing edge two validation blocks and one
// fault-response block.
type Figure5Shape struct {
	ValidationPerEdge int
	FaultRespPerEdge  int
	EdgesPerBranch    int
}

// PaperFigure5 is Fig. 5's structure.
var PaperFigure5 = Figure5Shape{ValidationPerEdge: 2, FaultRespPerEdge: 1, EdgesPerBranch: 2}

// OverheadPct converts original/hardened sizes to a percentage.
func OverheadPct(original, hardened int) float64 {
	if original == 0 {
		return 0
	}
	return 100 * float64(hardened-original) / float64(original)
}
