package core

import "testing"

func TestOverheadPct(t *testing.T) {
	tests := []struct {
		orig, hardened int
		want           float64
	}{
		{100, 120, 20},
		{100, 100, 0},
		{100, 400, 300},
		{0, 50, 0}, // degenerate input guarded
	}
	for _, tt := range tests {
		if got := OverheadPct(tt.orig, tt.hardened); got != tt.want {
			t.Errorf("OverheadPct(%d,%d) = %v, want %v", tt.orig, tt.hardened, got, tt.want)
		}
	}
}

func TestPaperReferenceValues(t *testing.T) {
	// Pin the paper's numbers: these are transcription constants and
	// must never drift.
	if PaperTableV["pincheck"].FaulterPatcher != 17.61 || PaperTableV["pincheck"].Hybrid != 85.88 {
		t.Error("pincheck Table V row wrong")
	}
	if PaperTableV["bootloader"].FaulterPatcher != 19.67 || PaperTableV["bootloader"].Hybrid != 48.67 {
		t.Error("bootloader Table V row wrong")
	}
	if PaperDuplicationMinPct != 300 {
		t.Error("duplication bound wrong")
	}
	// Table IV total instruction counts (paper: 1+1 before, 22 IR
	// instructions after at the IR level).
	sum := 0
	for _, c := range PaperTableIV.IRAfter {
		sum += c.N
	}
	if sum != 22 {
		t.Errorf("paper IR-after total = %d, want 22", sum)
	}
	sum = 0
	for _, c := range PaperTableIV.X86After {
		sum += c.N
	}
	if sum != 35 {
		t.Errorf("paper x86-after total = %d, want 35", sum)
	}
	if PaperFigure5.ValidationPerEdge != 2 || PaperFigure5.EdgesPerBranch != 2 {
		t.Error("figure 5 shape wrong")
	}
}
