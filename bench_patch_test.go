// Benchmarks for the incremental plan → execute → store campaign
// engine: the Faulter+Patcher fixed point (cold, and warm from a
// content-addressed store) and the order-2 pair sweep on the
// first-fault snapshot tree. CI exports them as BENCH_patch.json next
// to BENCH_campaign.json, so the driver's and pair engine's speedups —
// and regressions — are visible in the tracked trajectory.
package reinforce

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
)

// patchOptions is the standing fixed-point configuration the patch
// benchmarks share.
func patchOptions(c *cases.Case, order int, st *campaign.Store) harden.FaulterPatcherOptions {
	return harden.FaulterPatcherOptions{
		Good:   c.Good,
		Bad:    c.Bad,
		Models: []fault.Model{fault.ModelSkip},
		Order:  order,
		Store:  st,
	}
}

// BenchmarkPatchFixedPoint measures the order-1 Faulter+Patcher fixed
// point cold: every iteration's campaign planned and executed with only
// the in-process footprint memo carrying outcomes across rounds.
func BenchmarkPatchFixedPoint(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	reused := 0
	for i := 0; i < b.N; i++ {
		res, err := harden.FaulterPatcher(bin, patchOptions(c, 1, nil))
		if err != nil {
			b.Fatal(err)
		}
		reused += res.Cache.Reused
	}
	b.ReportMetric(float64(reused)/float64(b.N), "reused/op")
}

// BenchmarkPatchFixedPointWarm measures the same fixed point answered
// from a pre-warmed content-addressed store — the `r2r patch
// -cache-dir` re-invocation path, which should replay without
// simulating a single injection.
func BenchmarkPatchFixedPointWarm(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	st, err := campaign.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := harden.FaulterPatcher(bin, patchOptions(c, 1, st)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		res, err := harden.FaulterPatcher(bin, patchOptions(c, 1, st))
		if err != nil {
			b.Fatal(err)
		}
		if res.Cache.Misses != 0 {
			b.Fatalf("warm fixed point missed the store: %+v", res.Cache)
		}
		hits += res.Cache.Hits
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}

// BenchmarkPatchOrder2FixedPoint measures the order-2 escalation fixed
// point (solo sweeps memo-reused across rounds, pair sweeps on the
// snapshot tree).
func BenchmarkPatchOrder2FixedPoint(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	for i := 0; i < b.N; i++ {
		res, err := harden.FaulterPatcher(bin, patchOptions(c, 2, nil))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PairIterations) == 0 {
			b.Fatal("order-2 stage did not run")
		}
	}
}

// BenchmarkOrder2PairSweep isolates the pair stage: one session, the
// full pruned pair list executed on the first-fault snapshot tree
// (O(distinct first faults) prefix replays instead of O(pairs)).
func BenchmarkOrder2PairSweep(b *testing.B) {
	c := cases.Bootloader()
	s, err := fault.NewSession(fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		b.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	pairs := fault.EnumeratePairs(solo, 0)
	if len(pairs) == 0 {
		b.Fatal("no pairs to sweep")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExecutePairShard(pairs, 0, 1, 0, nil)
	}
	b.ReportMetric(float64(len(pairs)*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkOrder2PairSweepPerPair is the pre-tree baseline: the same
// pair list simulated one SimulatePair call per pair — each replaying
// its prefix from the nearest golden checkpoint — on the same
// GOMAXPROCS worker pool the engine uses, so the tracked tree-vs-
// per-pair comparison isolates the snapshot forking, not parallelism.
func BenchmarkOrder2PairSweepPerPair(b *testing.B) {
	c := cases.Bootloader()
	s, err := fault.NewSession(fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		b.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	pairs := fault.EnumeratePairs(solo, 0)
	if len(pairs) == 0 {
		b.Fatal("no pairs to sweep")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1) - 1)
					if j >= len(pairs) {
						return
					}
					s.SimulatePair(pairs[j])
				}
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(len(pairs)*b.N)/b.Elapsed().Seconds(), "pairs/s")
}
