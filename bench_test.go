// Benchmark harness regenerating every table, figure and claim of the
// paper's evaluation (§V), plus ablations of the hardening pipelines
// and microbenchmarks of the substrate layers.
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark logs the regenerated table (paper column vs
// measured column) and reports its headline numbers as benchmark
// metrics, so bench output doubles as the experiment record.
package reinforce

import (
	"fmt"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/encode"
	"github.com/r2r/reinforce/internal/experiments"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/lower"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/patch"
)

// ---------------------------------------------------------------------
// Tables I–III: the local protection patterns. The benchmark measures
// pattern application + reassembly and logs the hardened code shape.
// ---------------------------------------------------------------------

func benchPattern(b *testing.B, op isa.Op, name string) {
	b.Helper()
	c := cases.Pincheck()
	src := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		prog, err := bir.Disassemble(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Reassemble(); err != nil {
			b.Fatal(err)
		}
		patch.EnsureFaulthandler(prog)
		var ref bir.InstRef
		found := false
		for _, blk := range prog.Blocks {
			for j := range blk.Insts {
				if blk.Insts[j].I.Op == op && !blk.Insts[j].Protected {
					ref = bir.InstRef{Block: blk, Index: j}
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			b.Fatalf("no %v site", op)
		}
		if err := patch.Apply(prog, ref, patch.StylePaper); err != nil {
			b.Fatal(err)
		}
		out, err := prog.Reassemble()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("%s pattern: %d -> %d bytes of code", name, src.CodeSize(), out.CodeSize())
			b.ReportMetric(float64(out.CodeSize()-src.CodeSize()), "pattern-bytes")
		}
	}
}

// BenchmarkTableI regenerates Table I (mov protection pattern).
func BenchmarkTableI(b *testing.B) { benchPattern(b, isa.MOV, "Table I mov") }

// BenchmarkTableII regenerates Table II (cmp protection pattern).
func BenchmarkTableII(b *testing.B) { benchPattern(b, isa.CMP, "Table II cmp") }

// BenchmarkTableIII regenerates Table III (jcc protection pattern).
func BenchmarkTableIII(b *testing.B) { benchPattern(b, isa.JCC, "Table III jcc") }

// ---------------------------------------------------------------------
// Table IV: qualitative overhead of branch hardening.
// ---------------------------------------------------------------------

// BenchmarkTableIV regenerates Table IV.
func BenchmarkTableIV(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			sum := func(m map[string]int) (n int) {
				for _, v := range m {
					n += v
				}
				return
			}
			b.ReportMetric(float64(sum(data.IRAfter))/float64(sum(data.IRBefore)), "ir-growth-x")
			b.ReportMetric(float64(sum(data.X86After))/float64(sum(data.X86Before)), "x86-growth-x")
		}
	}
}

// ---------------------------------------------------------------------
// Table V: code-size overhead per pipeline.
// ---------------------------------------------------------------------

// BenchmarkTableV regenerates Table V.
func BenchmarkTableV(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.TableV()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			for _, d := range data {
				b.ReportMetric(d.FaulterPatcher, d.Case+"-fp-%")
				b.ReportMetric(d.Hybrid, d.Case+"-hybrid-%")
			}
		}
	}
}

// ---------------------------------------------------------------------
// §V-C claims.
// ---------------------------------------------------------------------

// BenchmarkClaimSkipResolved regenerates the instruction-skip claim.
func BenchmarkClaimSkipResolved(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.ClaimSkip()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			residual := 0
			for _, d := range data {
				residual += d.PointsAfter
			}
			b.ReportMetric(float64(residual), "residual-skip-vulns")
		}
	}
}

// BenchmarkClaimBitflipReduction regenerates the single-bit-flip claim.
func BenchmarkClaimBitflipReduction(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.ClaimBitflip()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			worst := 1.0
			for _, d := range data {
				if d.PointsBefore > 0 {
					r := 1 - float64(d.PointsAfter)/float64(d.PointsBefore)
					if r < worst {
						worst = r
					}
				}
			}
			b.ReportMetric(worst*100, "worst-reduction-%")
		}
	}
}

// BenchmarkClaimVulnClasses regenerates the vulnerability-class census.
func BenchmarkClaimVulnClasses(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.ClaimClass()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			other := 0
			for _, d := range data {
				other += d.Counts[fault.ClassOther]
			}
			b.ReportMetric(float64(other), "outside-cluster-sites")
		}
	}
}

// BenchmarkClaimDuplicationOverhead regenerates the duplication-baseline
// comparison.
func BenchmarkClaimDuplicationOverhead(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.ClaimDup()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			for _, d := range data {
				b.ReportMetric(d.DupPct, d.Case+"-dup-%")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Figures 4 & 5: CFG shapes.
// ---------------------------------------------------------------------

// BenchmarkFigure4 regenerates Figure 4 (plain branch CFG census).
func BenchmarkFigure4(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tab, data, err := experiments.Figures()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("\n%s", tab)
			b.ReportMetric(float64(data.BlocksBefore), "fig4-blocks")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (hardened branch CFG census).
func BenchmarkFigure5(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		_, data, err := experiments.Figures()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("fig5: +%d validation blocks, +%d fault-response blocks per branch",
				data.ValidationBlocks, data.FaultRespBlocks)
			b.ReportMetric(float64(data.ValidationBlocks), "fig5-validation-blocks")
			b.ReportMetric(float64(data.FaultRespBlocks), "fig5-fltresp-blocks")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: each knob of the Hybrid pipeline toggled in isolation.
// ---------------------------------------------------------------------

// BenchmarkAblationTargeting compares targeted patching against blanket
// duplication on the reassembly substrate.
func BenchmarkAblationTargeting(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		fp, err := harden.FaulterPatcher(bin, harden.FaulterPatcherOptions{
			Good: c.Good, Bad: c.Bad,
		})
		if err != nil {
			b.Fatal(err)
		}
		dup, err := harden.Duplication(bin)
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			b.Logf("targeted %.2f%% vs blanket %.2f%%", fp.Overhead()*100, dup.Overhead()*100)
			b.ReportMetric(fp.Overhead()*100, "targeted-%")
			b.ReportMetric(dup.Overhead()*100, "blanket-%")
		}
	}
}

// BenchmarkAblationLoweringOpts measures how much of the Hybrid overhead
// each code-generator optimization buys back.
func BenchmarkAblationLoweringOpts(b *testing.B) {
	bin := cases.Pincheck().MustBuild()
	configs := []struct {
		name string
		opt  harden.HybridOptions
	}{
		{"full", harden.HybridOptions{}},
		{"no-fusion", harden.HybridOptions{Lower: lower.Options{DisableFusion: true}}},
		{"no-acc-cache", harden.HybridOptions{Lower: lower.Options{DisableAccCache: true}}},
		{"no-cleanup", harden.HybridOptions{SkipCleanup: true}},
	}
	logged := false
	for i := 0; i < b.N; i++ {
		line := ""
		for _, cfg := range configs {
			res, err := harden.Hybrid(bin, cfg.opt)
			if err != nil {
				b.Fatal(err)
			}
			line += fmt.Sprintf("  %s=%.1f%%", cfg.name, res.Overhead()*100)
			if !logged {
				b.ReportMetric(res.Overhead()*100, cfg.name+"-%")
			}
		}
		if !logged {
			logged = true
			b.Logf("hybrid overhead by codegen config:%s", line)
		}
	}
}

// BenchmarkAblationFaultPersistence compares persistent and transient
// bit flips.
func BenchmarkAblationFaultPersistence(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		var succ [2]int
		for j, transient := range []bool{false, true} {
			rep, err := fault.Run(fault.Campaign{
				Binary: bin, Good: c.Good, Bad: c.Bad,
				Models: []fault.Model{fault.ModelBitFlip}, Transient: transient,
			})
			if err != nil {
				b.Fatal(err)
			}
			succ[j] = len(rep.Successful())
		}
		if !logged {
			logged = true
			b.Logf("bitflip successes: persistent=%d transient=%d", succ[0], succ[1])
			b.ReportMetric(float64(succ[0]), "persistent-vulns")
			b.ReportMetric(float64(succ[1]), "transient-vulns")
		}
	}
}

// BenchmarkAblationFaultDedup compares per-trace-offset and per-site
// fault targeting.
func BenchmarkAblationFaultDedup(b *testing.B) {
	c := cases.Bootloader() // loop-heavy: dedup matters
	bin := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		var injections [2]int
		var sites [2]int
		for j, dedup := range []bool{false, true} {
			rep, err := fault.Run(fault.Campaign{
				Binary: bin, Good: c.Good, Bad: c.Bad,
				Models: []fault.Model{fault.ModelSkip}, DedupSites: dedup,
			})
			if err != nil {
				b.Fatal(err)
			}
			injections[j] = len(rep.Injections)
			sites[j] = len(rep.VulnerableSites())
		}
		if !logged {
			logged = true
			b.Logf("skip injections: full=%d dedup=%d (vulnerable sites %d vs %d)",
				injections[0], injections[1], sites[0], sites[1])
			b.ReportMetric(float64(injections[0]), "full-injections")
			b.ReportMetric(float64(injections[1]), "dedup-injections")
		}
	}
}

// BenchmarkAblationChecksum compares the paper's XOR edge checksum with
// the add/rotate variant.
func BenchmarkAblationChecksum(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		var sizes [2]int
		for j, kind := range []passes.ChecksumKind{passes.ChecksumXOR, passes.ChecksumAddRot} {
			res, err := harden.Hybrid(bin, harden.HybridOptions{Checksum: kind})
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Check(res.Binary); err != nil {
				b.Fatal(err)
			}
			sizes[j] = res.Binary.CodeSize()
		}
		if !logged {
			logged = true
			b.Logf("hybrid code size: xor=%dB addrot=%dB", sizes[0], sizes[1])
			b.ReportMetric(float64(sizes[0]), "xor-bytes")
			b.ReportMetric(float64(sizes[1]), "addrot-bytes")
		}
	}
}

// BenchmarkAblationPatternStyle compares the paper's printed Tables
// I–III patterns against the fall-through variant: the printed patterns
// leave their own taken-branch displacements attackable, which is
// exactly the residual the paper's 50% bit-flip figure reflects.
func BenchmarkAblationPatternStyle(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	logged := false
	for i := 0; i < b.N; i++ {
		var residual [2]int
		for j, style := range []patch.Style{patch.StylePaper, patch.StyleFallthrough} {
			res, err := patch.Harden(bin, patch.Options{
				Good: c.Good, Bad: c.Bad,
				Models: []fault.Model{fault.ModelBitFlip},
				Style:  style,
			})
			if err != nil {
				b.Fatal(err)
			}
			residual[j] = len(res.Final.Successful())
		}
		if !logged {
			logged = true
			b.Logf("residual bitflip points: paper-style=%d fallthrough-style=%d",
				residual[0], residual[1])
			b.ReportMetric(float64(residual[0]), "paper-style-residual")
			b.ReportMetric(float64(residual[1]), "fallthrough-residual")
		}
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.
// ---------------------------------------------------------------------

// BenchmarkEncode measures single-instruction encoding.
func BenchmarkEncode(b *testing.B) {
	in := isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RBX, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encode.Encode(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures single-instruction decoding.
func BenchmarkDecode(b *testing.B) {
	code := encode.MustEncode(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RBX, 16)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decode.Decode(code, 0x401000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemble measures assembling the pincheck case study.
func BenchmarkAssemble(b *testing.B) {
	src := cases.Pincheck().Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures interpreter throughput (steps/sec) on the
// bootloader's hash loop.
func BenchmarkEmulator(b *testing.B) {
	c := cases.Bootloader()
	bin := c.MustBuild()
	b.ReportAllocs()
	var steps uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(bin, emu.Config{Stdin: c.Good})
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		m.Release()
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkFaultCampaign measures a full skip-model campaign on
// pincheck.
func BenchmarkFaultCampaign(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	for i := 0; i < b.N; i++ {
		rep, err := fault.Run(fault.Campaign{
			Binary: bin, Good: c.Good, Bad: c.Bad,
			Models: []fault.Model{fault.ModelSkip},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Injections) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignEngineBitflip measures the snapshot-cached engine on
// the exhaustive pincheck bit-flip sweep — the workload the campaign
// subsystem exists for (golden run memoized once, every injection forks
// a copy-on-write snapshot, undecodable flips pre-screened).
func BenchmarkCampaignEngineBitflip(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	injections := 0
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(fault.Campaign{
			Binary: bin, Good: c.Good, Bad: c.Bad,
			Models: []fault.Model{fault.ModelBitFlip},
		}, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		injections += len(rep.Injections)
	}
	b.ReportMetric(float64(injections)/b.Elapsed().Seconds(), "injections/s")
}

// BenchmarkCampaignSessionReuse isolates the engine's per-injection
// cost: one session, every fault simulated b.N-independent times.
func BenchmarkCampaignSessionReuse(b *testing.B) {
	c := cases.Pincheck()
	s, err := fault.NewSession(fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		b.Fatal(err)
	}
	faults := s.Faults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Simulate(faults[i%len(faults)])
	}
}

// BenchmarkCampaignBatch measures the batch API sweeping both case
// studies under the skip model, as the evaluation harness does.
func BenchmarkCampaignBatch(b *testing.B) {
	var jobs []campaign.Job
	for _, c := range cases.All() {
		jobs = append(jobs, campaign.Job{
			Name: c.Name,
			Campaign: fault.Campaign{
				Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
				Models: []fault.Model{fault.ModelSkip},
			},
		})
	}
	for i := 0; i < b.N; i++ {
		for _, r := range campaign.RunAll(jobs, campaign.Options{}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkCampaignNewModels measures the extended fault catalog
// (register flips, multi-skips, data flips) on pincheck.
func BenchmarkCampaignNewModels(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	injections := 0
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(fault.Campaign{
			Binary: bin, Good: c.Good, Bad: c.Bad,
			Models: []fault.Model{fault.ModelRegFlip, fault.ModelMultiSkip, fault.ModelDataFlip},
		}, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		injections += len(rep.Injections)
	}
	b.ReportMetric(float64(injections)/b.Elapsed().Seconds(), "injections/s")
}

// BenchmarkCampaignOrder2 measures an order-2 skip-pair campaign on
// pincheck (solo sweep + pruned pair enumeration + pair simulation).
func BenchmarkCampaignOrder2(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	pairs := 0
	for i := 0; i < b.N; i++ {
		rep, err := campaign.RunOrder2(fault.Campaign{
			Binary: bin, Good: c.Good, Bad: c.Bad,
			Models: []fault.Model{fault.ModelSkip},
		}, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pairs += len(rep.Pairs)
	}
	b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkLift measures lifting the bootloader to IR.
func BenchmarkLift(b *testing.B) {
	bin := cases.Bootloader().MustBuild()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lift.Lift(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLower measures the full lift+cleanup+lower round trip.
func BenchmarkLower(b *testing.B) {
	bin := cases.Bootloader().MustBuild()
	for i := 0; i < b.N; i++ {
		lr, err := lift.Lift(bin)
		if err != nil {
			b.Fatal(err)
		}
		if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
			b.Fatal(err)
		}
		if _, err := lower.Lower(lr, lower.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridPipeline measures the complete Hybrid hardening
// pipeline end to end.
func BenchmarkHybridPipeline(b *testing.B) {
	bin := cases.Pincheck().MustBuild()
	for i := 0; i < b.N; i++ {
		if _, err := harden.Hybrid(bin, harden.HybridOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaulterPatcherPipeline measures the complete iterative
// pipeline end to end (skip model).
func BenchmarkFaulterPatcherPipeline(b *testing.B) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	for i := 0; i < b.N; i++ {
		if _, err := harden.FaulterPatcher(bin, harden.FaulterPatcherOptions{
			Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
