// Benchmarks for the corpus batch runner: the full registered
// case-study corpus swept at orders 1+2, cold (private in-memory store,
// everything simulated) and warm (replayed from a pre-warmed
// disk-backed store). CI exports them as BENCH_corpus.json next to
// BENCH_campaign.json and BENCH_patch.json, extending the tracked
// perf trajectory to corpus scale.
package reinforce

import (
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// corpusBenchJobs builds the standing benchmark corpus: every
// registered case, skip + bitflip, site-deduplicated (the `r2r corpus`
// default shape).
func corpusBenchJobs(b *testing.B) []campaign.CorpusJob {
	b.Helper()
	var jobs []campaign.CorpusJob
	for _, c := range cases.Corpus() {
		bin, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, campaign.CorpusJob{
			Case: c.Name,
			Campaign: fault.Campaign{
				Binary: bin, Good: c.Good, Bad: c.Bad,
				Models:     []fault.Model{fault.ModelSkip, fault.ModelBitFlip},
				DedupSites: true,
			},
		})
	}
	return jobs
}

// corpusBenchOptions is the standing option set (pair budget bounded
// like the corpus experiment's).
func corpusBenchOptions(st *campaign.Store) campaign.CorpusOptions {
	return campaign.CorpusOptions{
		Options: campaign.Options{MaxPairs: 512, Store: st},
		Orders:  []int{1, 2},
	}
}

// runCorpusBench executes one corpus sweep and returns it after
// failing the benchmark on any cell error.
func runCorpusBench(b *testing.B, jobs []campaign.CorpusJob, opt campaign.CorpusOptions) *campaign.CorpusResult {
	b.Helper()
	res, err := campaign.RunCorpus(jobs, opt)
	if err != nil {
		b.Fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
	return res
}

// BenchmarkCorpusCold measures the full corpus sweep with a fresh
// in-memory store per iteration: every order-1 campaign simulated,
// every order-2 solo stage answered from the iteration's own store.
func BenchmarkCorpusCold(b *testing.B) {
	jobs := corpusBenchJobs(b)
	injections, cells := 0, 0
	for i := 0; i < b.N; i++ {
		res := runCorpusBench(b, jobs, corpusBenchOptions(nil))
		injections = res.Aggregate().Injections
		cells = len(res.Results)
	}
	b.ReportMetric(float64(injections), "injections/op")
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkCorpusColdParallel is the cold sweep with concurrent case
// chains on a shared worker pool — the `r2r corpus -parallel-cells`
// configuration. Results are bit-identical to BenchmarkCorpusCold
// (test-enforced by the scheduler differential suite); only the
// schedule differs. cells/s is the guarded corpus throughput metric.
func BenchmarkCorpusColdParallel(b *testing.B) {
	jobs := corpusBenchJobs(b)
	cells := 0
	for i := 0; i < b.N; i++ {
		opt := corpusBenchOptions(nil)
		opt.ParallelCells = len(jobs)
		res := runCorpusBench(b, jobs, opt)
		cells = len(res.Results)
	}
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkCorpusWarm measures the same sweep replayed from a
// pre-warmed disk-backed store — the `r2r corpus -cache-dir`
// re-invocation, which must answer every campaign without simulating.
func BenchmarkCorpusWarm(b *testing.B) {
	jobs := corpusBenchJobs(b)
	dir := b.TempDir()
	warmup, err := campaign.NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	runCorpusBench(b, jobs, corpusBenchOptions(warmup))
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		st, err := campaign.NewStore(dir) // fresh store: hits come from disk
		if err != nil {
			b.Fatal(err)
		}
		res := runCorpusBench(b, jobs, corpusBenchOptions(st))
		if res.Cache.Misses != 0 {
			b.Fatalf("warm corpus run missed the store: %+v", res.Cache)
		}
		hits = res.Cache.Hits
	}
	b.ReportMetric(float64(hits), "hits/op")
}

// BenchmarkCorpusWarmCapped is the warm replay through a store capped
// to a handful of resident entries — the corpus-scale memory-bound
// configuration, where reads keep coming from disk instead of
// accumulating every campaign in RAM.
func BenchmarkCorpusWarmCapped(b *testing.B) {
	jobs := corpusBenchJobs(b)
	dir := b.TempDir()
	warmup, err := campaign.NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	runCorpusBench(b, jobs, corpusBenchOptions(warmup))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := campaign.NewStoreCapped(dir, 2)
		if err != nil {
			b.Fatal(err)
		}
		res := runCorpusBench(b, jobs, corpusBenchOptions(st))
		if res.Cache.Misses != 0 {
			b.Fatalf("capped warm corpus run missed the store: %+v", res.Cache)
		}
		if st.MemEntries() > 2 {
			b.Fatalf("cap not enforced: %d resident entries", st.MemEntries())
		}
	}
}

// TestWriteBenchCorpusJSON exports the corpus benchmarks as
// BENCH_corpus.json (CI's perf-tracking step); no-op unless
// -benchjson-corpus is set.
func TestWriteBenchCorpusJSON(t *testing.T) {
	if *benchJSONCorpus == "" {
		t.Skip("enable with -benchjson-corpus PATH")
	}
	writeBenchJSON(t, *benchJSONCorpus, []namedBench{
		{"CorpusCold", BenchmarkCorpusCold},
		{"CorpusColdParallel", BenchmarkCorpusColdParallel},
		{"CorpusWarm", BenchmarkCorpusWarm},
		{"CorpusWarmCapped", BenchmarkCorpusWarmCapped},
	})
}
