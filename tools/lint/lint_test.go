package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSrc writes the files as one package directory and lints it.
func lintSrc(t *testing.T, files map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := run([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantRule(t *testing.T, findings []string, rule string, n int) {
	t.Helper()
	got := 0
	for _, f := range findings {
		if strings.Contains(f, "["+rule+"]") {
			got++
		}
	}
	if got != n {
		t.Errorf("want %d %s finding(s), got %d: %v", n, rule, got, findings)
	}
}

// TestMapRangeExportFlagged is the injected-violation check the CI
// wiring relies on: a map iteration feeding an export path must fail
// the lint step.
func TestMapRangeExportFlagged(t *testing.T) {
	findings := lintSrc(t, map[string]string{"export.go": `package p

import "fmt"

func Export(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`})
	wantRule(t, findings, "maprange", 1)
}

func TestMapRangeCollectThenSortClean(t *testing.T) {
	findings := lintSrc(t, map[string]string{"collect.go": `package p

import "sort"

func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`})
	wantRule(t, findings, "maprange", 0)
}

func TestMapRangeOrderFreeClean(t *testing.T) {
	findings := lintSrc(t, map[string]string{"orderfree.go": `package p

func Merge(dst, src map[string]int) (changed bool) {
	for k, v := range src {
		if dst[k] != v {
			dst[k] = v
			changed = true
		}
	}
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	return changed
}

func Count(m map[string]int, hist map[int]int) {
	for _, v := range m {
		hist[v]++
	}
}
`})
	wantRule(t, findings, "maprange", 0)
}

func TestMapRangeDirective(t *testing.T) {
	findings := lintSrc(t, map[string]string{"allowed.go": `package p

import "fmt"

func Dump(m map[string]int) {
	//lint:allow maprange (debug helper, order is cosmetic)
	for k := range m {
		fmt.Println(k)
	}
}
`})
	wantRule(t, findings, "maprange", 0)
}

func TestWallClockFlaggedAndAllowed(t *testing.T) {
	findings := lintSrc(t, map[string]string{"clock.go": `package p

import "time"

func Bad() time.Time { return time.Now() }

func Allowed() time.Time {
	return time.Now() //lint:allow wallclock (elapsed reporting)
}
`})
	wantRule(t, findings, "wallclock", 1)
}

func TestMathRandFlaggedOutsideTests(t *testing.T) {
	findings := lintSrc(t, map[string]string{
		"rng.go": `package p

import "math/rand"

func Roll() int { return rand.Int() }
`,
		"rng_test.go": `package p

import "math/rand"

func roll() int { return rand.Int() }
`,
	})
	// The production file is flagged; the test file is not linted.
	wantRule(t, findings, "mathrand", 1)
}

func TestAtomicMixedAccessFlagged(t *testing.T) {
	findings := lintSrc(t, map[string]string{"mix.go": `package p

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n }
`})
	wantRule(t, findings, "atomicmix", 1)
}

func TestAtomicConsistentAccessClean(t *testing.T) {
	findings := lintSrc(t, map[string]string{"ok.go": `package p

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return atomic.LoadInt64(&c.n) }
`})
	wantRule(t, findings, "atomicmix", 0)
}

func TestAtomicDocumentedRawFieldFlagged(t *testing.T) {
	findings := lintSrc(t, map[string]string{"doc.go": `package p

type pool struct {
	// next is the claim cursor, advanced atomically by workers.
	next int64
}
`})
	wantRule(t, findings, "atomicfield", 1)
}

func TestAtomicTypedFieldClean(t *testing.T) {
	findings := lintSrc(t, map[string]string{"typed.go": `package p

import "sync/atomic"

type pool struct {
	// next is the claim cursor, advanced atomically by workers.
	next atomic.Int64
}

func (p *pool) claim() int64 { return p.next.Add(1) - 1 }
`})
	if len(findings) != 0 {
		t.Errorf("typed atomic field flagged: %v", findings)
	}
}

// TestRepoPackagesClean pins the CI contract: the deterministic
// packages the docs job lints must stay clean.
func TestRepoPackagesClean(t *testing.T) {
	findings, err := run([]string{
		"../../internal/campaign",
		"../../internal/fault",
		"../../internal/report",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("repo packages have lint findings:\n%s", strings.Join(findings, "\n"))
	}
}
