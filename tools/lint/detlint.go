// detlint: the determinism rules. The campaign engine promises
// bit-identical reports for a given binary and configuration — across
// worker counts, shard recombination, and cache replay — so the
// packages on its merge/export paths must not let Go's randomized map
// iteration order, the wall clock, or a PRNG reach any result.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allConstant reports whether every expression is a literal or the
// predeclared true/false.
func allConstant(exprs []ast.Expr) bool {
	for _, e := range exprs {
		switch x := e.(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if x.Name != "true" && x.Name != "false" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// detlint runs the three determinism rules over one package.
func detlint(p *pkg) []string {
	var findings []string
	for _, f := range p.files {
		findings = append(findings, checkImports(p, f)...)
		findings = append(findings, checkWallClock(p, f)...)
		findings = append(findings, checkMapRanges(p, f)...)
	}
	return findings
}

// checkImports flags math/rand: a deterministic package has no
// legitimate use for a PRNG — generators that must look random (fuzz
// variants, oracle inputs) derive from explicit seeds with local
// mixers instead.
func checkImports(p *pkg, f *ast.File) []string {
	var findings []string
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if p.allowed("mathrand", spec) {
			continue
		}
		findings = append(findings, p.findingAt(spec, "mathrand",
			"import of %s in a deterministic package", path))
	}
	return findings
}

// checkWallClock flags time.Now calls. Elapsed-time reporting is the
// one sanctioned use (the exporters strip those fields before any
// determinism comparison) and marks itself with `//lint:allow
// wallclock`.
func checkWallClock(p *pkg, f *ast.File) []string {
	timeName := ""
	for _, spec := range f.Imports {
		if strings.Trim(spec.Path.Value, `"`) == "time" {
			timeName = importName(spec)
		}
	}
	if timeName == "" {
		return nil
	}
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName {
			return true
		}
		// A shadowing local named like the import is not the package.
		if obj := p.info.Uses[id]; obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				return true
			}
		}
		if !p.allowed("wallclock", sel) {
			findings = append(findings, p.findingAt(sel, "wallclock",
				"time.Now in a deterministic package (annotate elapsed-time reporting with lint:allow wallclock)"))
		}
		return true
	})
	return findings
}

// checkMapRanges flags `for … range m` over a map unless the loop
// cannot leak iteration order: either its body is order-free (all its
// effects are map writes, so the result is the same in any order), or
// the enclosing function visibly sorts after the loop (the repo's
// collect-then-sort idiom), or a lint:allow directive vouches for it.
func checkMapRanges(p *pkg, f *ast.File) []string {
	var findings []string
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p, rng.X) {
				return true
			}
			if p.allowed("maprange", rng) || orderFreeBody(rng.Body) || sortsAfter(fd, rng) {
				return true
			}
			findings = append(findings, p.findingAt(rng, "maprange",
				"map iteration order reaches the result: sort the keys first, or collect and sort after the loop"))
			return true
		})
	}
	return findings
}

// isMapType reports whether the expression type-checked to a map.
// Stub imports leave expressions of imported types unresolved; those
// are skipped, which is the permissive direction for a lint.
func isMapType(p *pkg, e ast.Expr) bool {
	t := p.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderFreeBody reports whether every effect in the loop body is a
// keyed write (m[k] = v, m[k]++, delete(m, k)) — commutative across
// iterations, so the iteration order cannot reach the result.
// Conditionals recurse; any other statement (appends, calls, sends,
// returns) is treated as order-sensitive.
func orderFreeBody(body *ast.BlockStmt) bool {
	var free func(ast.Stmt) bool
	free = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.AssignStmt:
			// A constant store (found = true) is idempotent, so any
			// iteration order produces the same value.
			if st.Tok == token.ASSIGN && len(st.Rhs) == len(st.Lhs) && allConstant(st.Rhs) {
				return true
			}
			for _, lhs := range st.Lhs {
				if _, ok := lhs.(*ast.IndexExpr); !ok {
					return false
				}
			}
			return true
		case *ast.IncDecStmt:
			_, ok := st.X.(*ast.IndexExpr)
			return ok
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "delete"
		case *ast.IfStmt:
			for _, s := range st.Body.List {
				if !free(s) {
					return false
				}
			}
			if st.Else != nil {
				return free(st.Else)
			}
			return true
		case *ast.BlockStmt:
			for _, s := range st.List {
				if !free(s) {
					return false
				}
			}
			return true
		case *ast.DeclStmt, *ast.EmptyStmt:
			return true
		default:
			return false
		}
	}
	for _, s := range body.List {
		if !free(s) {
			return false
		}
	}
	return true
}

// sortsAfter reports whether the function calls a sorter (any function
// whose name contains "sort", covering sort.Slice, sort.Strings, and
// local helpers) lexically after the range statement — the
// collect-then-sort idiom the deterministic packages use everywhere.
func sortsAfter(fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
