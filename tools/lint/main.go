// Command lint is the repo's determinism and atomicity multichecker,
// built on the standard library's go/ast + go/types only (the
// container has no golang.org/x/tools, so this is deliberately not an
// analysis.Analyzer).
//
// Two checkers run over every package directory given on the command
// line (test files are skipped — tests may use wall clocks and
// math/rand legitimately):
//
//   - detlint proves the determinism discipline the campaign engine's
//     bit-identical-results contract rests on: no map iteration in a
//     merge/export path unless the loop is order-free or its results
//     are sorted downstream, no time.Now outside annotated wall-clock
//     reporting, no math/rand at all;
//   - atomiclint proves atomic-access hygiene: a field or variable
//     that is accessed through sync/atomic anywhere must be accessed
//     through it everywhere, and a raw integer field documented as
//     atomic must use an atomic.* type instead.
//
// A finding can be suppressed with a `//lint:allow <rule>` comment on
// the same line or the line above, which doubles as in-source
// documentation of why the site is exempt. Rules: maprange, wallclock,
// mathrand.
//
// Usage: go run ./tools/lint DIR [DIR...]
// Exit status: 0 clean, 1 findings, 2 usage/load failure.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lint DIR [DIR...]")
		os.Exit(2)
	}
	findings, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("lint: %d package dir(s) clean\n", len(os.Args[1:]))
}

// run lints every package directory and returns the findings, sorted
// by position.
func run(dirs []string) ([]string, error) {
	var findings []string
	for _, dir := range dirs {
		p, err := loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		if p == nil {
			continue // no non-test Go files
		}
		findings = append(findings, detlint(p)...)
		findings = append(findings, atomiclint(p)...)
	}
	sort.Strings(findings)
	return findings, nil
}

// pkg is one parsed and (permissively) type-checked package directory.
type pkg struct {
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	// allow maps "file:line" to the set of rules a lint:allow
	// directive suppresses there.
	allow map[string]map[string]bool
}

// loadDir parses the non-test Go files of one directory and
// type-checks them against stub imports: imported symbols get invalid
// types and their errors are ignored, while everything declared in the
// package itself — in particular every locally-typed map — resolves.
// The checkers only need "is this expression a map", so partial
// information is enough, and it keeps the tool free of module
// resolution and of golang.org/x/tools.
func loadDir(dir string) (*pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: stubImporter{},
		Error:    func(error) {}, // stub imports guarantee errors; partial Info is the point
	}
	conf.Check(files[0].Name.Name, fset, files, info)

	p := &pkg{fset: fset, files: files, info: info, allow: map[string]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Fields(strings.TrimPrefix(text, "lint:allow")) {
					// The directive suppresses on its own line and the
					// next, so it works standalone above a statement
					// and trailing on one.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if p.allow[key] == nil {
							p.allow[key] = map[string]bool{}
						}
						p.allow[key][rule] = true
					}
				}
			}
		}
	}
	return p, nil
}

// stubImporter satisfies every import with an empty package.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	tp := types.NewPackage(path, name)
	tp.MarkComplete()
	return tp, nil
}

// allowed reports whether a lint:allow directive covers the node.
func (p *pkg) allowed(rule string, node ast.Node) bool {
	pos := p.fset.Position(node.Pos())
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	return p.allow[key][rule]
}

// findingAt renders one finding.
func (p *pkg) findingAt(node ast.Node, rule, format string, args ...any) string {
	return fmt.Sprintf("%s: [%s] %s", p.fset.Position(node.Pos()), rule, fmt.Sprintf(format, args...))
}

// importName returns the name an import is referenced by in the file:
// its alias, or the last path element.
func importName(spec *ast.ImportSpec) string {
	if spec.Name != nil {
		return spec.Name.Name
	}
	path := strings.Trim(spec.Path.Value, `"`)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
