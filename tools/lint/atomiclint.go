// atomiclint: atomic-access hygiene. A value that is ever accessed
// through sync/atomic must be accessed through it on every path — one
// plain load of a counter that workers bump with atomic.AddInt64 is a
// data race the race detector only catches when the schedule
// cooperates. The reliable cure is the typed atomic.* wrappers, whose
// plain access is impossible; this checker enforces the migration.
package main

import (
	"go/ast"
	"regexp"
	"strings"
)

var atomicDocRE = regexp.MustCompile(`(?i)\batomic(ally)?\b`)

// rawIntTypes are the types sync/atomic's function API operates on.
var rawIntTypes = map[string]bool{
	"int32": true, "int64": true, "uint32": true, "uint64": true, "uintptr": true,
}

// atomiclint runs two rules over one package:
//
//   - a raw-integer struct field whose doc comment declares it atomic
//     must use a typed atomic.* instead (the type system then enforces
//     what the comment only requests);
//   - a name that appears as &x in any sync/atomic call must never be
//     accessed outside one.
func atomiclint(p *pkg) []string {
	var findings []string

	// Rule 1: atomic-documented raw integer fields.
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				id, ok := field.Type.(*ast.Ident)
				if !ok || !rawIntTypes[id.Name] {
					continue
				}
				doc := field.Doc.Text() + " " + field.Comment.Text()
				if atomicDocRE.MatchString(doc) {
					findings = append(findings, p.findingAt(field, "atomicfield",
						"field documented as atomic but typed %s: use atomic.%s so plain access cannot compile",
						id.Name, typedAtomicFor(id.Name)))
				}
			}
			return true
		})
	}

	// Rule 2: mixed atomic/plain access, per function for locals and
	// package-wide for selector fields (x.f and y.f with the same field
	// name are folded together — names are unique enough within one
	// package, and folding errs toward reporting).
	atomicNames := map[string]bool{}
	inAtomicCall := map[ast.Node]bool{}
	for _, f := range p.files {
		atomicPkg := ""
		for _, spec := range f.Imports {
			if strings.Trim(spec.Path.Value, `"`) == "sync/atomic" {
				atomicPkg = importName(spec)
			}
		}
		if atomicPkg == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != atomicPkg {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if name, ok := accessName(un.X); ok {
					atomicNames[name] = true
					inAtomicCall[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicNames) == 0 {
		return findings
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || inAtomicCall[n] {
				return false // post-order callback / the sanctioned access
			}
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			name, ok := accessName(e)
			if !ok || !atomicNames[name] {
				return true
			}
			// Skip the defining occurrence (var decl, struct field) —
			// only reads and writes race.
			if id, isIdent := n.(*ast.Ident); isIdent {
				if p.info.Defs[id] != nil {
					return true
				}
			}
			findings = append(findings, p.findingAt(n, "atomicmix",
				"%s is accessed with sync/atomic elsewhere; plain access races with it", name))
			return false
		})
	}
	return findings
}

// accessName maps an expression to the name atomiclint tracks: a bare
// identifier for locals and package vars, the field name for selector
// accesses. Non-name expressions report false.
func accessName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	}
	return "", false
}

// typedAtomicFor names the sync/atomic wrapper type for a raw type.
func typedAtomicFor(raw string) string {
	switch raw {
	case "int32":
		return "Int32"
	case "int64":
		return "Int64"
	case "uint32":
		return "Uint32"
	case "uint64":
		return "Uint64"
	default:
		return "Uintptr"
	}
}
