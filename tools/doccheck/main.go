// Command doccheck validates every `./r2r …` invocation quoted in the
// given markdown files against the real CLI surface (internal/cli):
// the subcommand must exist, every flag must parse against the
// command's actual flag set, the positional-argument count must be in
// range, and literal -model values must name registered fault models.
// CI runs it over README.md and docs/*.md, so a flag rename or removal
// that outruns the documentation fails the build (the doc rot the PR-2
// flag renames caused).
//
// Only fenced code blocks are scanned. A command line is one whose
// first token is `r2r` or `./r2r`; backslash continuations are joined
// and trailing `# comments` stripped. Shell substitutions like
// "$(cat f)" and `...` ellipses count as opaque flag values.
//
// Usage: go run ./tools/doccheck README.md docs/*.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/r2r/reinforce/internal/cli"
	"github.com/r2r/reinforce/internal/fault"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		checked := 0
		for _, cmd := range extractCommands(string(data)) {
			checked++
			if err := checkCommand(cmd.tokens); err != nil {
				failed = true
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n    %s\n", path, cmd.line, err, cmd.text)
			}
		}
		tables := 0
		for _, tab := range extractModelTables(string(data)) {
			tables++
			for _, err := range checkModelTable(tab) {
				failed = true
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, tab.line, err)
			}
		}
		fmt.Printf("doccheck: %s: %d r2r invocation(s), %d fault-model table(s) checked\n", path, checked, tables)
	}
	if failed {
		os.Exit(1)
	}
}

// command is one documented r2r invocation.
type command struct {
	line   int // 1-based line of the first physical line
	text   string
	tokens []string
}

// extractCommands scans fenced code blocks for r2r invocations.
func extractCommands(doc string) []command {
	var out []command
	inFence := false
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			continue
		}
		start := i
		// Join backslash continuations.
		full := line
		for strings.HasSuffix(full, "\\") && i+1 < len(lines) {
			i++
			full = strings.TrimSuffix(full, "\\") + " " + strings.TrimSpace(lines[i])
		}
		// Strip trailing comments.
		if idx := strings.Index(full, " #"); idx >= 0 {
			full = strings.TrimSpace(full[:idx])
		}
		toks := splitShell(full)
		if len(toks) == 0 {
			continue
		}
		if toks[0] != "r2r" && toks[0] != "./r2r" {
			continue
		}
		out = append(out, command{line: start + 1, text: full, tokens: toks[1:]})
	}
	return out
}

// splitShell splits a command line on whitespace, keeping
// double-quoted strings (including $(...) substitutions) as single
// tokens and dropping the quotes.
func splitShell(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	depth := 0 // $( ) nesting inside quotes
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && depth == 0:
			inQuote = !inQuote
		case inQuote && c == '(':
			depth++
			cur.WriteByte(c)
		case inQuote && c == ')':
			depth--
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// opaque reports whether a documented value is a placeholder rather
// than a literal (shell substitution, ellipsis, ALL-CAPS metavariable).
func opaque(v string) bool {
	if strings.Contains(v, "$") || strings.Contains(v, "...") {
		return true
	}
	return v != "" && strings.ToUpper(v) == v && strings.ContainsAny(v, "ABCDEFGHIJKLMNOPQRSTUVWXYZ")
}

// checkCommand validates one invocation's tokens (subcommand first).
func checkCommand(tokens []string) error {
	if len(tokens) == 0 {
		return fmt.Errorf("bare r2r invocation")
	}
	name := tokens[0]
	spec, ok := cli.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown subcommand %q", name)
	}
	fs := spec.Flags()
	if err := fs.Parse(tokens[1:]); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if n := fs.NArg(); n < spec.MinArgs || (spec.MaxArgs >= 0 && n > spec.MaxArgs) {
		max := fmt.Sprintf("%d", spec.MaxArgs)
		if spec.MaxArgs < 0 {
			max = "∞"
		}
		return fmt.Errorf("%s: %d positional argument(s), want %d..%s", name, n, spec.MinArgs, max)
	}
	// Literal -model values must name registered fault models.
	var modelErr error
	fs.Visit(func(f *flag.Flag) {
		if f.Name != "model" || modelErr != nil {
			return
		}
		v := f.Value.String()
		if opaque(v) {
			return
		}
		if _, err := fault.ParseModels(v); err != nil {
			modelErr = fmt.Errorf("%s: %v", name, err)
		}
	})
	return modelErr
}

// modelTable is one documented fault-model table: the (canonical name,
// CLI alias) pairs of its rows.
type modelTable struct {
	line int // 1-based line of the header row
	rows [][2]string
}

// extractModelTables finds markdown tables whose header starts with
// "Model | CLI name" — the documented fault-model catalog.
func extractModelTables(doc string) []modelTable {
	var out []modelTable
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		cells := tableCells(lines[i])
		if len(cells) < 2 || cells[0] != "Model" || cells[1] != "CLI name" {
			continue
		}
		tab := modelTable{line: i + 1}
		// Collect rows until the table ends, skipping the |---|---|
		// separator wherever (and whether) it appears.
		for j := i + 1; j < len(lines); j++ {
			row := tableCells(lines[j])
			if len(row) < 2 {
				i = j
				break
			}
			i = j
			if separatorRow(row) {
				continue
			}
			tab.rows = append(tab.rows, [2]string{unquote(row[0]), unquote(row[1])})
		}
		out = append(out, tab)
	}
	return out
}

// tableCells splits a markdown table row into trimmed cells, or nil
// when the line is not a table row.
func tableCells(line string) []string {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "|") {
		return nil
	}
	parts := strings.Split(strings.Trim(line, "|"), "|")
	cells := make([]string, 0, len(parts))
	for _, p := range parts {
		cells = append(cells, strings.TrimSpace(p))
	}
	return cells
}

// unquote strips markdown code backticks.
func unquote(s string) string { return strings.Trim(s, "`") }

// separatorRow reports whether every cell is a markdown alignment
// separator (dashes with optional colons).
func separatorRow(cells []string) bool {
	for _, c := range cells {
		if strings.Trim(c, ":-") != "" || !strings.Contains(c, "-") {
			return false
		}
	}
	return true
}

// checkModelTable validates a documented fault-model table against the
// live registry: every row's canonical name and CLI alias must resolve
// to the same registered model, the canonical column must be the
// spec's registered Name, and every registered model must have exactly
// one row — so a new model cannot ship without its documentation (nor
// stale documentation outlive a model).
func checkModelTable(tab modelTable) []error {
	var errs []error
	seen := map[fault.Model]int{}
	for _, row := range tab.rows {
		canonical, alias := row[0], row[1]
		m, err := fault.ParseModel(canonical)
		if err != nil {
			errs = append(errs, fmt.Errorf("model table row %q: %v", canonical, err))
			continue
		}
		if spec := fault.SpecOf(m); spec.Name() != canonical {
			errs = append(errs, fmt.Errorf("model table row %q: canonical name is %q", canonical, spec.Name()))
		}
		am, err := fault.ParseModel(alias)
		if err != nil {
			errs = append(errs, fmt.Errorf("model table row %q: CLI name %q: %v", canonical, alias, err))
		} else if am != m {
			errs = append(errs, fmt.Errorf("model table row %q: CLI name %q resolves to %q", canonical, alias, am))
		}
		seen[m]++
	}
	for _, m := range fault.RegisteredModels() {
		switch seen[m] {
		case 0:
			errs = append(errs, fmt.Errorf("model table: registered model %q has no row (catalog: %s)",
				m, strings.Join(fault.CatalogNames(), ", ")))
		case 1:
		default:
			errs = append(errs, fmt.Errorf("model table: model %q documented %d times", m, seen[m]))
		}
	}
	return errs
}
