// Command doccheck validates every `./r2r …` invocation quoted in the
// given markdown files against the real CLI surface (internal/cli):
// the subcommand must exist, every flag must parse against the
// command's actual flag set, the positional-argument count must be in
// range, and literal -model values must name registered fault models.
// CI runs it over README.md and docs/*.md, so a flag rename or removal
// that outruns the documentation fails the build (the doc rot the PR-2
// flag renames caused).
//
// Only fenced code blocks are scanned. A command line is one whose
// first token is `r2r` or `./r2r`; backslash continuations are joined
// and trailing `# comments` stripped. Shell substitutions like
// "$(cat f)" and `...` ellipses count as opaque flag values.
//
// Usage: go run ./tools/doccheck README.md docs/*.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/r2r/reinforce/internal/cli"
	"github.com/r2r/reinforce/internal/fault"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		checked := 0
		for _, cmd := range extractCommands(string(data)) {
			checked++
			if err := checkCommand(cmd.tokens); err != nil {
				failed = true
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n    %s\n", path, cmd.line, err, cmd.text)
			}
		}
		fmt.Printf("doccheck: %s: %d r2r invocation(s) checked\n", path, checked)
	}
	if failed {
		os.Exit(1)
	}
}

// command is one documented r2r invocation.
type command struct {
	line   int // 1-based line of the first physical line
	text   string
	tokens []string
}

// extractCommands scans fenced code blocks for r2r invocations.
func extractCommands(doc string) []command {
	var out []command
	inFence := false
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			continue
		}
		start := i
		// Join backslash continuations.
		full := line
		for strings.HasSuffix(full, "\\") && i+1 < len(lines) {
			i++
			full = strings.TrimSuffix(full, "\\") + " " + strings.TrimSpace(lines[i])
		}
		// Strip trailing comments.
		if idx := strings.Index(full, " #"); idx >= 0 {
			full = strings.TrimSpace(full[:idx])
		}
		toks := splitShell(full)
		if len(toks) == 0 {
			continue
		}
		if toks[0] != "r2r" && toks[0] != "./r2r" {
			continue
		}
		out = append(out, command{line: start + 1, text: full, tokens: toks[1:]})
	}
	return out
}

// splitShell splits a command line on whitespace, keeping
// double-quoted strings (including $(...) substitutions) as single
// tokens and dropping the quotes.
func splitShell(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	depth := 0 // $( ) nesting inside quotes
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && depth == 0:
			inQuote = !inQuote
		case inQuote && c == '(':
			depth++
			cur.WriteByte(c)
		case inQuote && c == ')':
			depth--
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// opaque reports whether a documented value is a placeholder rather
// than a literal (shell substitution, ellipsis, ALL-CAPS metavariable).
func opaque(v string) bool {
	if strings.Contains(v, "$") || strings.Contains(v, "...") {
		return true
	}
	return v != "" && strings.ToUpper(v) == v && strings.ContainsAny(v, "ABCDEFGHIJKLMNOPQRSTUVWXYZ")
}

// checkCommand validates one invocation's tokens (subcommand first).
func checkCommand(tokens []string) error {
	if len(tokens) == 0 {
		return fmt.Errorf("bare r2r invocation")
	}
	name := tokens[0]
	spec, ok := cli.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown subcommand %q", name)
	}
	fs := spec.Flags()
	if err := fs.Parse(tokens[1:]); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if n := fs.NArg(); n < spec.MinArgs || (spec.MaxArgs >= 0 && n > spec.MaxArgs) {
		max := fmt.Sprintf("%d", spec.MaxArgs)
		if spec.MaxArgs < 0 {
			max = "∞"
		}
		return fmt.Errorf("%s: %d positional argument(s), want %d..%s", name, n, spec.MinArgs, max)
	}
	// Literal -model values must name registered fault models.
	var modelErr error
	fs.Visit(func(f *flag.Flag) {
		if f.Name != "model" || modelErr != nil {
			return
		}
		v := f.Value.String()
		if opaque(v) {
			return
		}
		if _, err := fault.ParseModels(v); err != nil {
			modelErr = fmt.Errorf("%s: %v", name, err)
		}
	})
	return modelErr
}
