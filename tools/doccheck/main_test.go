package main

import (
	"fmt"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/fault"
)

// doc wraps command lines in a fenced markdown block.
func doc(lines ...string) string {
	return "# title\n\n```sh\n" + strings.Join(lines, "\n") + "\n```\n"
}

func TestExtractCommands(t *testing.T) {
	d := doc(
		"./r2r campaign -good 1234 -bad 0000 pin.elf",
		"r2r info pin.elf   # trailing comment",
		"./r2r patch -good A \\",
		"  -bad B pin.elf",
		"echo not-an-r2r-line",
	) + "\n./r2r outside-fence\n"
	cmds := extractCommands(d)
	if len(cmds) != 3 {
		t.Fatalf("extracted %d commands, want 3: %+v", len(cmds), cmds)
	}
	if cmds[0].tokens[0] != "campaign" {
		t.Errorf("first command = %v", cmds[0].tokens)
	}
	if got := strings.Join(cmds[2].tokens, " "); got != "patch -good A -bad B pin.elf" {
		t.Errorf("continuation join = %q", got)
	}
	if cmds[1].tokens[len(cmds[1].tokens)-1] != "pin.elf" {
		t.Errorf("comment not stripped: %v", cmds[1].tokens)
	}
}

// TestCheckCommandCleanCase: a documented invocation matching the real
// flag surface passes.
func TestCheckCommandCleanCase(t *testing.T) {
	for _, line := range [][]string{
		{"campaign", "-good", "1234", "-bad", "0000", "-model", "skip,bitflip", "pin.elf"},
		{"corpus", "-cases", "pincheck,otpauth", "-order", "2", "-json"},
		{"patch", "-good", "G", "-bad", "B", "-o", "out.elf", "pin.elf"},
		{"experiments", "-only", "corpus"},
	} {
		if err := checkCommand(line); err != nil {
			t.Errorf("%v: %v", line, err)
		}
	}
}

// TestCheckCommandDriftedFlag: the README-drift scenario — a command
// quoting a flag the real flag set no longer has must fail.
func TestCheckCommandDriftedFlag(t *testing.T) {
	err := checkCommand([]string{"campaign", "-goood", "1234", "pin.elf"})
	if err == nil || !strings.Contains(err.Error(), "goood") {
		t.Errorf("drifted flag not caught: %v", err)
	}
	if err := checkCommand([]string{"campain", "pin.elf"}); err == nil {
		t.Error("unknown subcommand not caught")
	}
	if err := checkCommand([]string{"info"}); err == nil {
		t.Error("missing positional argument not caught")
	}
	if err := checkCommand([]string{"corpus", "stray.elf"}); err == nil {
		t.Error("stray positional argument not caught")
	}
	if err := checkCommand([]string{"faults", "-model", "skipp", "-good", "G", "-bad", "B", "x.elf"}); err == nil {
		t.Error("unregistered literal -model value not caught")
	}
}

// registryRows builds a correct model table from the live registry.
func registryRows() [][2]string {
	var rows [][2]string
	for _, m := range fault.RegisteredModels() {
		name := fault.SpecOf(m).Name()
		rows = append(rows, [2]string{name, name})
	}
	return rows
}

func TestCheckModelTableCleanCase(t *testing.T) {
	tab := modelTable{rows: registryRows()}
	if errs := checkModelTable(tab); len(errs) != 0 {
		t.Errorf("clean table rejected: %v", errs)
	}
}

// TestCheckModelTableMissingRow: a registered model without a
// documentation row — the new-model-ships-undocumented scenario — must
// fail, naming the missing model.
func TestCheckModelTableMissingRow(t *testing.T) {
	rows := registryRows()
	dropped := rows[len(rows)-1][0]
	tab := modelTable{rows: rows[:len(rows)-1]}
	errs := checkModelTable(tab)
	if len(errs) == 0 {
		t.Fatal("missing row not caught")
	}
	found := false
	for _, err := range errs {
		if strings.Contains(err.Error(), dropped) && strings.Contains(err.Error(), "no row") {
			found = true
		}
	}
	if !found {
		t.Errorf("errors do not name the missing model %q: %v", dropped, errs)
	}
}

// TestCheckModelTableBadRows: stale rows (unknown model, wrong
// canonical name, duplicate) are each reported.
func TestCheckModelTableBadRows(t *testing.T) {
	rows := append(registryRows(), [2]string{"ghost-model", "ghost"})
	errs := checkModelTable(modelTable{rows: rows})
	if len(errs) == 0 {
		t.Fatal("unknown model row not caught")
	}

	alias := registryRows()
	alias[0][0] = "skip" // CLI alias in the canonical column
	if errs := checkModelTable(modelTable{rows: alias}); len(errs) == 0 {
		t.Error("non-canonical name in canonical column not caught")
	}

	dup := append(registryRows(), registryRows()[0])
	if errs := checkModelTable(modelTable{rows: dup}); len(errs) == 0 {
		t.Error("duplicate row not caught")
	}
}

// TestExtractModelTables: the markdown table parser finds the catalog
// table, skips the separator, and unquotes backticks.
func TestExtractModelTables(t *testing.T) {
	d := `
| Model | CLI name | What |
|---|---|---|
| ` + "`instruction-skip`" + ` | ` + "`skip`" + ` | skips |

other text
`
	tabs := extractModelTables(d)
	if len(tabs) != 1 || len(tabs[0].rows) != 1 {
		t.Fatalf("tables = %+v", tabs)
	}
	if tabs[0].rows[0] != [2]string{"instruction-skip", "skip"} {
		t.Errorf("row = %v", tabs[0].rows[0])
	}
	if got := extractModelTables("| Something | else |\n|---|---|\n| a | b |\n"); len(got) != 0 {
		t.Errorf("non-catalog table matched: %+v", got)
	}
}

// TestOpaque: placeholders are skipped, literals are checked.
func TestOpaque(t *testing.T) {
	for v, want := range map[string]bool{
		"$(cat f)": true,
		"...":      true,
		"MODELS":   true,
		"skip":     false,
		"0/4":      false,
		"pin.elf":  false,
		"reg-flip": false,
	} {
		if got := opaque(v); got != want {
			t.Errorf("opaque(%q) = %v, want %v", v, got, want)
		}
	}
}

// TestSplitShell: quoted substitutions stay one token.
func TestSplitShell(t *testing.T) {
	toks := splitShell(`./r2r campaign -good "$(cat a b)" -bad "x y" pin.elf`)
	want := []string{"./r2r", "campaign", "-good", "$(cat a b)", "-bad", "x y", "pin.elf"}
	if fmt.Sprint(toks) != fmt.Sprint(want) {
		t.Errorf("splitShell = %v, want %v", toks, want)
	}
}
