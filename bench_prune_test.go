// Benchmarks for the fault-equivalence pruning pass: the pruned order-2
// pair sweep against the exhaustive BenchmarkOrder2PairSweep baseline
// (same case, same snapshot tree), the hardened-binary sweep where
// state-equivalence inheritance does most of the work, and the order-3
// triple sweep the pruner makes tractable. CI exports them as
// BENCH_prune.json next to the other tracked trajectories.
package reinforce

import (
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
)

// pairSweepFixture is the (session, solo, pairs) setup shared by the
// pair-sweep benchmarks. The unhardened callers use the same bootloader
// configuration as BenchmarkOrder2PairSweep, so the pruned and
// exhaustive trajectories compare directly.
func pairSweepFixture(b *testing.B, camp fault.Campaign) (*fault.Session, []fault.Injection, []fault.FaultPair) {
	b.Helper()
	s, err := fault.NewSession(camp)
	if err != nil {
		b.Fatal(err)
	}
	solo, _ := s.ExecuteShard(0, 1, 0, nil)
	pairs := fault.EnumeratePairs(solo, 0)
	if len(pairs) == 0 {
		b.Fatal("no pairs to sweep")
	}
	return s, solo, pairs
}

// BenchmarkOrder2PairSweepPruned is the pruned counterpart of
// BenchmarkOrder2PairSweep: the identical bootloader pair list swept
// through a fresh PairPruner each iteration (cold — no class state
// carried between iterations), so pairs/s measures the end-to-end
// pruned sweep including every digest the reductions pay for.
func BenchmarkOrder2PairSweepPruned(b *testing.B) {
	c := cases.Bootloader()
	s, solo, pairs := pairSweepFixture(b, fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := s.NewPairPruner(solo)
		s.ExecutePairShardPruned(pairs, pr, 0, 1, 0, nil)
	}
	b.ReportMetric(float64(len(pairs)*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkOrder2PairSweepPrunedHardened sweeps the Faulter+Patcher-
// hardened bootloader, where the added countermeasures leave many
// second faults landing on state the reference run already reached —
// the regime state-hash inheritance was built for.
func BenchmarkOrder2PairSweepPrunedHardened(b *testing.B) {
	c := cases.Bootloader()
	res, err := harden.FaulterPatcher(c.MustBuild(), harden.FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		b.Fatal(err)
	}
	s, solo, pairs := pairSweepFixture(b, fault.Campaign{
		Binary: res.Binary, Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := s.NewPairPruner(solo)
		s.ExecutePairShardPruned(pairs, pr, 0, 1, 0, nil)
	}
	b.ReportMetric(float64(len(pairs)*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkOrder3TripleSweep measures the order-3 stage the pruner
// unlocks: the budget-capped triple list on the bootloader, executed
// with a pair-seeded pruner the way campaign.RunOrder3 drives it.
func BenchmarkOrder3TripleSweep(b *testing.B) {
	c := cases.Bootloader()
	s, solo, pairs := pairSweepFixture(b, fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	pairInj, _ := s.ExecutePairShard(pairs, 0, 1, 0, nil)
	triples := fault.EnumerateTriples(solo, fault.DefaultMaxTriples)
	if len(triples) == 0 {
		b.Fatal("no triples to sweep")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := s.NewPairPruner(solo)
		pr.SetPairOutcomes(pairInj)
		s.ExecuteTripleShard(triples, pr, 0, 1, 0, nil)
	}
	b.ReportMetric(float64(len(triples)*b.N)/b.Elapsed().Seconds(), "triples/s")
}
