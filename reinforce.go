// Package reinforce is the public API of rewrite-to-reinforce: a pure-Go
// reproduction of "Rewrite to Reinforce: Rewriting the Binary to Apply
// Countermeasures against Fault Injection" (DAC 2021).
//
// The library hardens static x86-64 binaries against fault-injection
// attacks without source code, via two static binary-rewriting
// pipelines:
//
//   - HardenFaulterPatcher — the simulation-driven iterative loop: an
//     emulated fault campaign (instruction skip / single bit flip)
//     locates vulnerable instructions, and each one is replaced with the
//     hardened local patterns of the paper's Tables I–III; the loop
//     repeats until no successful fault remains or none is fixable.
//   - HardenHybrid — the full-translation route: the binary is lifted
//     to a compiler IR, the conditional-branch-hardening countermeasure
//     (per-block UIDs, duplicated edge checksums, re-evaluated
//     comparisons, per-edge validation chains) is applied as an IR pass,
//     and the module is lowered back to a working executable.
//
// Everything runs against this repository's own substrate: assembler,
// ELF64 reader/writer, x86-64 subset emulator, binary IR, compiler IR.
// See docs/ARCHITECTURE.md for the system walkthrough,
// docs/COUNTERMEASURES.md for each countermeasure's threat model, and
// docs/EXPERIMENTS.md for the paper-vs-measured results.
//
// Quick start:
//
//	c := reinforce.Pincheck()
//	bin := c.MustBuild()
//	rep, _ := reinforce.FaultScan(bin, c.Good, c.Bad, reinforce.ModelSkip)
//	fmt.Println(rep.Summary()) // vulnerabilities of the unprotected binary
//
//	res, _ := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
//		Good: c.Good, Bad: c.Bad,
//	})
//	fmt.Println(res.Summary()) // iterations, patched sites, overhead
package reinforce

import (
	"fmt"
	"strings"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emit"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/trace"
)

// Binary is a static ELF64 executable (parsed or under construction).
type Binary = elf.Binary

// Section is a loadable region of a Binary.
type Section = elf.Section

// Symbol is a named address in a Binary.
type Symbol = elf.Symbol

// Assemble builds a static binary from assembly source (see
// internal/asm for the dialect; examples/ and the case studies are the
// best reference).
func Assemble(source string) (*Binary, error) {
	return asm.Assemble(source, nil)
}

// ParseELF loads a binary image: either the section-header form produced
// by (*Binary).Bytes or the program-header-only form produced by EmitELF.
func ParseELF(image []byte) (*Binary, error) {
	return elf.Load(image)
}

// EmitELF renders the binary as a minimal standalone static executable:
// ELF header plus one PT_LOAD program header per section, no section
// headers — the form a stock kernel loader (and ParseELF) accepts.
// Emission round-trips: ParseELF(EmitELF(b)) re-emits byte-identically.
func EmitELF(bin *Binary) ([]byte, error) {
	return emit.Image(bin)
}

// RunResult is the outcome of executing a binary in the emulator.
type RunResult = emu.Result

// Run executes a binary on the emulator with the given stdin, returning
// its observable behaviour. The error is non-nil if the program crashed
// (memory fault, invalid instruction, runaway execution).
func Run(bin *Binary, stdin []byte) (RunResult, error) {
	return emu.New(bin, emu.Config{Stdin: stdin}).Run()
}

// Trace is a recorded instruction-level execution trace.
type Trace = trace.Trace

// CaptureTrace records the dynamic instruction trace of a run.
func CaptureTrace(bin *Binary, stdin []byte) *Trace {
	return trace.Capture(bin, stdin, 0)
}

// Fault model selection.
type Model = fault.Model

// Fault models: the paper's two (§IV-B1) plus the extended catalog
// (register bit flip, multi-instruction skip window, transient data
// flip). New models plug in via fault.Register.
const (
	ModelSkip      = fault.ModelSkip
	ModelBitFlip   = fault.ModelBitFlip
	ModelRegFlip   = fault.ModelRegFlip
	ModelMultiSkip = fault.ModelMultiSkip
	ModelDataFlip  = fault.ModelDataFlip
)

// ParseModels resolves a comma-separated fault-model list (canonical
// names or CLI aliases; "both" = the paper's pair, "all" = every
// registered model).
func ParseModels(spec string) ([]Model, error) {
	return fault.ParseModels(spec)
}

// FaultReport is a completed fault-injection campaign.
type FaultReport = fault.Report

// FaultScan runs a fault-injection campaign against the binary: good
// and bad are the two oracle inputs (accepted and rejected); the
// campaign injects faults into the bad-input run under each model and
// reports which ones flip the program into good-input behaviour.
func FaultScan(bin *Binary, good, bad []byte, models ...Model) (*FaultReport, error) {
	return fault.Run(fault.Campaign{
		Binary: bin,
		Good:   good,
		Bad:    bad,
		Models: models,
	})
}

// Order2Report is the outcome of an order-2 multi-fault campaign: the
// order-1 sweep plus the simulated fault pairs pruned from it.
type Order2Report = campaign.Order2Report

// FaultScanOrder2 runs an order-2 multi-fault campaign: the order-1
// sweep first, then deterministic fault *pairs* (both components
// individually detected or ignored, the second striking strictly later
// in the trace), capped at maxPairs (0 = the default budget). This is
// the attack that defeats single-fault-hardened binaries.
func FaultScanOrder2(bin *Binary, good, bad []byte, maxPairs int, models ...Model) (*Order2Report, error) {
	return campaign.RunOrder2(fault.Campaign{
		Binary: bin,
		Good:   good,
		Bad:    bad,
		Models: models,
	}, campaign.Options{MaxPairs: maxPairs})
}

// CampaignStore is the content-addressed campaign result cache:
// results are keyed by binary digest + campaign options, so repeated
// scans and hardening runs over unchanged binaries replay from the
// store instead of re-simulating (`r2r ... -cache-dir`).
type CampaignStore = campaign.Store

// NewCampaignStore opens (creating if needed) a store backed by dir;
// an empty dir means in-memory only. Pass it via
// FaulterPatcherOptions.Store to make hardening runs incremental
// across processes.
func NewCampaignStore(dir string) (*CampaignStore, error) {
	return campaign.NewStore(dir)
}

// FaulterPatcherOptions configure the iterative hardening loop.
type FaulterPatcherOptions = harden.FaulterPatcherOptions

// FaulterPatcherResult is the outcome of the iterative hardening loop.
type FaulterPatcherResult = harden.FaulterPatcherResult

// HardenFaulterPatcher runs the paper's Faulter+Patcher pipeline
// (§IV-B): fault simulation drives targeted insertion of the Table I–III
// local protection patterns until a fixed point.
func HardenFaulterPatcher(bin *Binary, opt FaulterPatcherOptions) (*FaulterPatcherResult, error) {
	return harden.FaulterPatcher(bin, opt)
}

// HybridOptions configure the full-translation pipeline.
type HybridOptions = harden.HybridOptions

// HybridResult is the outcome of the full-translation pipeline.
type HybridResult = harden.HybridResult

// HardenHybrid runs the paper's Hybrid compiler–binary pipeline (§IV-C):
// lift to IR, apply conditional branch hardening (§V-B), lower back.
func HardenHybrid(bin *Binary, opt HybridOptions) (*HybridResult, error) {
	return harden.Hybrid(bin, opt)
}

// DuplicationResult is the outcome of the blanket-duplication baseline.
type DuplicationResult = harden.DuplicationResult

// DuplicationBaseline applies the Table-I-style protection to every
// instruction (the paper's ">= 300% overhead" comparison point).
func DuplicationBaseline(bin *Binary) (*DuplicationResult, error) {
	return harden.Duplication(bin)
}

// Evaluation compares fault campaigns before and after hardening.
type Evaluation = harden.Evaluation

// Evaluate runs identical campaigns against the original and hardened
// binaries (how §V-C's tables are produced).
func Evaluate(original, hardened *Binary, good, bad []byte, models ...Model) (*Evaluation, error) {
	return harden.Evaluate(original, hardened, good, bad, models, 0)
}

// Case is a runnable case study with its behavioural oracle.
type Case = cases.Case

// Pincheck returns the paper's pin-checker case study.
func Pincheck() *Case { return cases.Pincheck() }

// Bootloader returns the paper's secure-bootloader case study.
func Bootloader() *Case { return cases.Bootloader() }

// Disassemble renders the binary's text section as a symbolized
// assembly listing.
func Disassemble(bin *Binary) (string, error) {
	prog, err := bir.Disassemble(bin)
	if err != nil {
		return "", err
	}
	return prog.Listing(), nil
}

// LiftIR lifts the binary and renders its compiler IR (useful for
// inspecting what the Hybrid pipeline transforms).
func LiftIR(bin *Binary) (string, error) {
	lr, err := lift.Lift(bin)
	if err != nil {
		return "", err
	}
	return lr.Module.String(), nil
}

// Module is the compiler IR module type (exposed for inspection).
type Module = ir.Module

// CFGDot lifts the binary and renders the entry function's control-flow
// graph in Graphviz dot syntax. With hardened=true the conditional
// branch hardening pass runs first, reproducing the structure of the
// paper's Figure 5 (validation chains in green, fault responses in
// blue); with false it is Figure 4's plain CFG.
func CFGDot(bin *Binary, hardened bool) (string, error) {
	lr, err := lift.Lift(bin)
	if err != nil {
		return "", err
	}
	if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
		return "", err
	}
	if hardened {
		if err := passes.Run(lr.Module, passes.BranchHarden{}); err != nil {
			return "", err
		}
	}
	f := lr.Module.Func(lr.Module.EntryFunc)
	if f == nil {
		return "", fmt.Errorf("reinforce: entry function missing")
	}
	return ir.DotCFG(f), nil
}

// DecodeInst decodes a single instruction at the start of code.
func DecodeInst(code []byte, addr uint64) (string, int, error) {
	in, err := decode.Decode(code, addr)
	if err != nil {
		return "", 0, err
	}
	return in.String(), in.EncLen, nil
}

// Version identifies the library.
const Version = "1.0.0"

// Describe returns a one-paragraph description of a binary: entry,
// sections, code size — handy for CLI/status output.
func Describe(bin *Binary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "entry %#x, %d sections, %d bytes of code\n", bin.Entry, len(bin.Sections), bin.CodeSize())
	for _, s := range bin.Sections {
		perms := ""
		if s.Flags&elf.FlagRead != 0 {
			perms += "r"
		}
		if s.Flags&elf.FlagWrite != 0 {
			perms += "w"
		}
		if s.Flags&elf.FlagExec != 0 {
			perms += "x"
		}
		fmt.Fprintf(&sb, "  %-10s %#10x  %6d bytes  %s\n", s.Name, s.Addr, s.Size(), perms)
	}
	return sb.String()
}
