// Benchmark regression guard: `go test -run TestBenchGuard -benchguard .`
// re-measures the engine's headline benchmarks and fails when a
// throughput metric lands more than benchGuardTolerance below the
// committed BENCH_*.json baseline. CI runs it as its own job, so a
// change that silently costs the emulator or the pair sweep their
// speed fails the build instead of surfacing commits later in the
// artifact trail.
package reinforce

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
)

var benchGuard = flag.Bool("benchguard", false, "re-measure guarded benchmarks and fail on regression against the committed BENCH_*.json baselines")

// benchGuardTolerance is the allowed relative shortfall before the
// guard fails: generous enough for shared-runner noise, tight enough
// that a real regression (a disabled fast path, a lost pruning layer)
// cannot hide inside it.
const benchGuardTolerance = 0.15

// baselineMetric reads one benchmark's named metric from a committed
// BENCH JSON file.
func baselineMetric(t *testing.T, path, bench, metric string) float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline missing: %v", err)
	}
	var records []BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, r := range records {
		if r.Name == bench {
			if v, ok := r.Metrics[metric]; ok {
				return v
			}
			t.Fatalf("%s: %s has no %q metric", path, bench, metric)
		}
	}
	t.Fatalf("%s: no record for %s", path, bench)
	return 0
}

// TestBenchGuard re-measures the guarded benchmarks against their
// committed baselines. The guarded set is the throughput numbers the
// whole engine stands on: raw emulator speed, pruned pair-sweep speed,
// and parallel corpus sweep throughput.
func TestBenchGuard(t *testing.T) {
	if !*benchGuard {
		t.Skip("enable with -benchguard")
	}
	guards := []struct {
		file, bench, metric string
		fn                  func(*testing.B)
	}{
		{"BENCH_campaign.json", "Emulator", "steps/s", BenchmarkEmulator},
		{"BENCH_prune.json", "Order2PairSweepPruned", "pairs/s", BenchmarkOrder2PairSweepPruned},
		{"BENCH_prune.json", "VerifyCatalog", "artifacts/s", BenchmarkVerifyCatalog},
		{"BENCH_corpus.json", "CorpusColdParallel", "cells/s", BenchmarkCorpusColdParallel},
	}
	for _, g := range guards {
		want := baselineMetric(t, g.file, g.bench, g.metric)
		res := testing.Benchmark(g.fn)
		got := res.Extra[g.metric]
		floor := want * (1 - benchGuardTolerance)
		if got < floor {
			t.Errorf("%s: %s = %.0f, below %.0f (baseline %.0f - %d%%)",
				g.bench, g.metric, got, floor, want, int(benchGuardTolerance*100))
		} else {
			t.Logf("%s: %s = %.0f (baseline %.0f, floor %.0f)", g.bench, g.metric, got, want, floor)
		}
	}
}
