module github.com/r2r/reinforce

go 1.22
