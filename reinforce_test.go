package reinforce

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart mirrors the package documentation example.
func TestPublicAPIQuickstart(t *testing.T) {
	c := Pincheck()
	bin := c.MustBuild()

	rep, err := FaultScan(bin, c.Good, c.Bad, ModelSkip)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Successful()) == 0 {
		t.Fatal("unprotected pincheck has no skip vulnerabilities?")
	}

	res, err := HardenFaulterPatcher(bin, FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad, Models: []Model{ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("did not converge:\n%s", res.Summary())
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleRunRoundTrip(t *testing.T) {
	bin, err := Assemble(`
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, msg_len
	syscall
	mov rax, 60
	mov rdi, 5
	syscall
.rodata
msg: .ascii "public api\n"
.equ msg_len, . - msg
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Stdout) != "public api\n" || res.ExitCode != 5 {
		t.Errorf("run = (%q, %d)", res.Stdout, res.ExitCode)
	}

	img, err := bin.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseELF(img)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2.Stdout) != "public api\n" {
		t.Error("ELF round trip changed behaviour")
	}
}

func TestTraceAndDisassemble(t *testing.T) {
	c := Pincheck()
	bin := c.MustBuild()
	tr := CaptureTrace(bin, c.Good)
	if tr.Err != nil || tr.Len() == 0 {
		t.Fatalf("trace: %v len %d", tr.Err, tr.Len())
	}
	listing, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"_start:", "grant:", "deny:", "syscall"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestLiftIRAndDescribe(t *testing.T) {
	bin := Bootloader().MustBuild()
	irText, err := LiftIR(bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"func _start()", "hash_loop:", "mul i64"} {
		if !strings.Contains(irText, want) {
			t.Errorf("IR missing %q", want)
		}
	}
	desc := Describe(bin)
	if !strings.Contains(desc, ".text") || !strings.Contains(desc, "rx") {
		t.Errorf("describe = %q", desc)
	}
}

func TestHybridThroughPublicAPI(t *testing.T) {
	c := Pincheck()
	bin := c.MustBuild()
	res, err := HardenHybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(bin, res.Binary, c.Good, c.Bad, ModelSkip)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SuccessAfter() != 0 {
		t.Errorf("hybrid left %d skip vulns", ev.SuccessAfter())
	}
}

func TestDecodeInst(t *testing.T) {
	s, n, err := DecodeInst([]byte{0x48, 0x89, 0xD8}, 0x401000)
	if err != nil || s != "mov rax, rbx" || n != 3 {
		t.Errorf("DecodeInst = (%q, %d, %v)", s, n, err)
	}
	if _, _, err := DecodeInst([]byte{0x06}, 0); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestDuplicationThroughPublicAPI(t *testing.T) {
	c := Pincheck()
	bin := c.MustBuild()
	dup, err := DuplicationBaseline(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(dup.Binary); err != nil {
		t.Fatal(err)
	}
	if dup.Overhead() <= 1.0 {
		t.Errorf("duplication overhead only %.0f%%", dup.Overhead()*100)
	}
}
